"""Event-wise accuracy under the MERLIN++ evaluation protocol.

A prediction counts as correct when it falls within a margin of 100
data points around the true anomalous event (paper Sec. IV-B2).  This
is the metric behind Table IV's accuracy column.
"""

from __future__ import annotations

import numpy as np

__all__ = ["event_detected", "window_hits_event", "event_accuracy"]

DEFAULT_MARGIN = 100


def event_detected(
    predicted_points: np.ndarray,
    event: tuple[int, int],
    margin: int = DEFAULT_MARGIN,
) -> bool:
    """True when any predicted point is within ``margin`` of the event."""
    predicted_points = np.asarray(predicted_points)
    if predicted_points.size == 0:
        return False
    start, end = event
    return bool(
        np.any((predicted_points >= start - margin) & (predicted_points < end + margin))
    )


def window_hits_event(
    window: tuple[int, int], event: tuple[int, int], margin: int = DEFAULT_MARGIN
) -> bool:
    """True when the half-open ``window`` overlaps the event +/- margin.

    Used for TriAD's tri-window / single-window accuracy, where success
    means the nominated window contains (part of) the anomaly.
    """
    w_start, w_end = window
    start, end = event
    return w_start < end + margin and w_end > start - margin


def event_accuracy(hits: list[bool]) -> float:
    """Fraction of datasets whose event was detected."""
    if not hits:
        return 0.0
    return float(np.mean([bool(h) for h in hits]))
