"""Point adjustment (PA) and its calibrated variant PA%K (paper Eq. 9).

PA marks an entire ground-truth event as detected if *any* of its points
was flagged — which leaks test labels into the predictions and inflates
F1 (paper Sec. II-B, Table II).  PA%K only applies the adjustment when
more than ``K`` percent of the event's points were flagged; sweeping K
from 1 to 100 and averaging the resulting F1 (the K-AUC) gives a score
that neither PA's optimism nor raw point-wise pessimism dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pointwise import precision_recall_f1

__all__ = ["label_events", "point_adjust", "pa_k", "PaKCurve", "pa_k_auc"]


def label_events(labels: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous runs of 1s in ``labels`` as half-open intervals."""
    labels = np.asarray(labels).astype(bool)
    positions = np.flatnonzero(labels)
    if len(positions) == 0:
        return []
    splits = np.flatnonzero(np.diff(positions) > 1)
    starts = np.concatenate([[positions[0]], positions[splits + 1]])
    ends = np.concatenate([positions[splits] + 1, [positions[-1] + 1]])
    return [(int(s), int(e)) for s, e in zip(starts, ends)]


def point_adjust(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Classic PA: flood-fill every event containing at least one hit."""
    predictions = np.asarray(predictions).astype(bool).copy()
    for start, end in label_events(labels):
        if predictions[start:end].any():
            predictions[start:end] = True
    return predictions.astype(np.int64)


def _validate_k(k: float) -> float:
    k = float(k)
    if not np.isfinite(k) or not 0.0 < k <= 100.0:
        raise ValueError(
            f"k must be a percentage in (0, 100], got {k!r} — k <= 0 "
            "silently degenerates to classic PA and k > 100 to a no-op"
        )
    return k


def _pa_k_with_events(
    predictions: np.ndarray, events: list[tuple[int, int]], k: float
) -> np.ndarray:
    """PA%K flood-fill against precomputed label events."""
    predictions = np.asarray(predictions).astype(bool).copy()
    for start, end in events:
        flagged = predictions[start:end].sum()
        if flagged and flagged / (end - start) > k / 100.0:
            predictions[start:end] = True
    return predictions.astype(np.int64)


def pa_k(predictions: np.ndarray, labels: np.ndarray, k: float) -> np.ndarray:
    """PA%K adjustment (Eq. 9): flood-fill an event only when more than
    ``k`` percent of its points were already flagged.

    ``k`` is in percent and must lie in ``(0, 100]``; anything outside
    raises ``ValueError`` (it would silently compute a different metric:
    ``k <= 0`` is classic PA, ``k > 100`` never adjusts anything).
    ``k=100`` never adjusts (raw point-wise); ``k -> 0`` recovers
    classic PA.  The flood-fill condition is strict: an event with
    *exactly* ``k`` percent flagged is **not** adjusted.
    """
    return _pa_k_with_events(predictions, label_events(labels), _validate_k(k))


@dataclass(frozen=True)
class PaKCurve:
    """PA%K metrics swept over K, with area-under-curve summaries.

    The AUC is the mean metric over K = 1..100, matching the paper's
    'optimized scores using the Area under the Curve'.
    """

    ks: np.ndarray
    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray

    @property
    def precision_auc(self) -> float:
        return float(self.precision.mean())

    @property
    def recall_auc(self) -> float:
        return float(self.recall.mean())

    @property
    def f1_auc(self) -> float:
        return float(self.f1.mean())


def pa_k_auc(
    predictions: np.ndarray, labels: np.ndarray, ks: np.ndarray | None = None
) -> PaKCurve:
    """Sweep PA%K over ``ks`` (default 1..100) and collect P/R/F1 curves.

    Label events are segmented once for the whole curve, not once per K
    — the sweep is 100 flood-fills over one event list.
    """
    if ks is None:
        ks = np.arange(1, 101, dtype=np.float64)
    ks = np.asarray(ks, dtype=np.float64)
    validated = [_validate_k(k) for k in ks]
    events = label_events(labels)
    precisions = np.empty(len(ks))
    recalls = np.empty(len(ks))
    f1s = np.empty(len(ks))
    for i, k in enumerate(validated):
        adjusted = _pa_k_with_events(predictions, events, k)
        precisions[i], recalls[i], f1s[i] = precision_recall_f1(adjusted, labels)
    return PaKCurve(ks=ks, precision=precisions, recall=recalls, f1=f1s)
