"""Input validation shared across public entry points.

Detectors and loaders accept user-supplied arrays; these helpers turn
silent NaN propagation or cryptic downstream shape errors into clear
exceptions at the API boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_series", "ensure_finite"]


def ensure_finite(x: np.ndarray, name: str = "series") -> np.ndarray:
    """Reject NaN/Inf values with a descriptive error."""
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        bad = int(np.sum(~np.isfinite(x)))
        raise ValueError(f"{name} contains {bad} non-finite values (NaN/Inf)")
    return x


def ensure_series(
    x: np.ndarray, name: str = "series", min_length: int = 2
) -> np.ndarray:
    """Validate a 1-D finite time series of at least ``min_length`` points."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {x.shape}")
    if len(x) < min_length:
        raise ValueError(f"{name} needs at least {min_length} points, got {len(x)}")
    return ensure_finite(x, name)
