"""Input validation shared across public entry points.

Detectors and loaders accept user-supplied arrays; these helpers turn
silent NaN propagation or cryptic downstream shape errors into clear
exceptions at the API boundary.  The archive runner calls
:func:`validate_dataset` per dataset so a malformed entry becomes an
attributed failure (or, without a retry policy, an immediate actionable
error) instead of a stack trace deep inside feature extraction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_series",
    "ensure_finite",
    "ensure_variation",
    "ensure_labels",
    "validate_dataset",
]


def ensure_finite(x: np.ndarray, name: str = "series") -> np.ndarray:
    """Reject NaN/Inf values with a descriptive error."""
    x = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        bad = int(np.sum(~np.isfinite(x)))
        raise ValueError(f"{name} contains {bad} non-finite values (NaN/Inf)")
    return x


def ensure_series(
    x: np.ndarray, name: str = "series", min_length: int = 2
) -> np.ndarray:
    """Validate a 1-D finite time series of at least ``min_length`` points."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {x.shape}")
    if x.size == 0:
        raise ValueError(f"{name} is empty")
    if len(x) < min_length:
        raise ValueError(f"{name} needs at least {min_length} points, got {len(x)}")
    return ensure_finite(x, name)


def ensure_variation(x: np.ndarray, name: str = "series") -> np.ndarray:
    """Reject constant series — no period, no contrast, no ranking signal."""
    x = np.asarray(x, dtype=np.float64)
    if x.size and float(np.min(x)) == float(np.max(x)):
        raise ValueError(
            f"{name} is constant (every value is {x.flat[0]!r}); "
            "a constant series has no periodic structure to train or score on — "
            "check the loader or drop this dataset"
        )
    return x


def ensure_labels(
    labels: np.ndarray, length: int, name: str = "labels"
) -> np.ndarray:
    """Validate binary point-wise labels matching the series length."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {labels.shape}")
    if len(labels) != length:
        raise ValueError(
            f"{name} length {len(labels)} does not match its series length "
            f"{length}; labels must mark every test point"
        )
    values = np.unique(labels)
    if not np.all(np.isin(values, (0, 1))):
        raise ValueError(
            f"{name} must be binary (0/1), found values {values[:5].tolist()}"
        )
    return labels.astype(np.int64)


def validate_dataset(dataset, min_length: int = 2) -> None:
    """Validate one archive entry (``.train``, ``.test``, ``.labels``).

    Checks both splits are 1-D, finite, non-empty and non-constant, and
    that labels are binary with one entry per test point.  Raises
    ``ValueError`` with the dataset name in the message.
    """
    name = getattr(dataset, "name", "<dataset>")
    ensure_series(dataset.train, f"{name}.train", min_length=min_length)
    ensure_variation(dataset.train, f"{name}.train")
    test = ensure_series(dataset.test, f"{name}.test", min_length=min_length)
    ensure_labels(dataset.labels, len(test), f"{name}.labels")
