"""Multivariate TriAD: per-channel detectors with cross-channel voting.

The paper notes industrial series "are often univariate and captured by
single sensors"; multi-sensor plants are handled here by the natural
factorization — one TriAD per channel, trained independently, with
point-wise votes pooled across channels.  A point is anomalous when at
least ``min_channels`` channels flag it, which both suppresses
single-channel noise and surfaces which sensors carried the event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.multivariate import MultivariateDataset
from .config import TriADConfig
from .detector import TriAD, TriADDetection

__all__ = ["MultivariateTriAD", "MultivariateDetection"]


@dataclass
class MultivariateDetection:
    """Pooled predictions plus every per-channel detection artifact."""

    predictions: np.ndarray
    channel_detections: list[TriADDetection]
    channel_votes: np.ndarray  # (channels, length) binary per-channel flags

    @property
    def channels_flagging(self) -> np.ndarray:
        """Per-point count of channels that flagged it."""
        return self.channel_votes.sum(axis=0)

    def implicated_channels(self, start: int, end: int) -> list[int]:
        """Channels whose predictions intersect ``[start, end)``."""
        return [
            c
            for c in range(self.channel_votes.shape[0])
            if self.channel_votes[c, start:end].any()
        ]


class MultivariateTriAD:
    """One TriAD per channel, pooled by cross-channel voting.

    Parameters
    ----------
    config:
        Shared per-channel configuration (per-channel seeds are offset
        so the encoders are independently initialized).
    min_channels:
        Minimum number of channels that must flag a point for the pooled
        prediction to mark it anomalous.
    """

    def __init__(self, config: TriADConfig | None = None, min_channels: int = 1) -> None:
        if min_channels < 1:
            raise ValueError("min_channels must be positive")
        self.config = config or TriADConfig()
        self.min_channels = min_channels
        self.detectors: list[TriAD] = []

    def fit(self, train: np.ndarray | MultivariateDataset) -> "MultivariateTriAD":
        """Train one detector per channel of ``(channels, length)`` data."""
        if isinstance(train, MultivariateDataset):
            train = train.train
        train = np.atleast_2d(np.asarray(train, dtype=np.float64))
        self.detectors = []
        for index, channel in enumerate(train):
            config = self.config.with_overrides(seed=self.config.seed + index)
            self.detectors.append(TriAD(config).fit(channel))
        return self

    def detect(self, test: np.ndarray | MultivariateDataset) -> MultivariateDetection:
        """Run every channel and pool the point-wise votes."""
        if isinstance(test, MultivariateDataset):
            test = test.test
        test = np.atleast_2d(np.asarray(test, dtype=np.float64))
        if not self.detectors:
            raise RuntimeError("MultivariateTriAD must be fit() before detect()")
        if test.shape[0] != len(self.detectors):
            raise ValueError(
                f"expected {len(self.detectors)} channels, got {test.shape[0]}"
            )
        detections = [
            detector.detect(channel)
            for detector, channel in zip(self.detectors, test)
        ]
        votes = np.stack([d.predictions for d in detections])
        threshold = min(self.min_channels, len(self.detectors))
        pooled = (votes.sum(axis=0) >= threshold).astype(np.int64)
        if not pooled.any():
            # Fall back to the single most-confident channel so the
            # pooled prediction is never empty (mirrors TriAD's own rule).
            pooled = votes[np.argmax(votes.sum(axis=1))].copy()
        return MultivariateDetection(
            predictions=pooled, channel_detections=detections, channel_votes=votes
        )

    def predict(self, test: np.ndarray | MultivariateDataset) -> np.ndarray:
        """Pooled binary predictions (uniform harness interface)."""
        return self.detect(test).predictions
