"""The TriAD detector: end-to-end training and inference pipeline
(paper Fig. 4 and Sec. III-D).

Inference stages:

1. *Tri-window detection* — encode every test window in all three
   domains, cross-compare representations, and nominate the most
   deviant window per domain (up to three candidates).
2. *Single-window selection* — score each candidate by its distance to
   the closest training window; the farthest candidate wins.
3. *Discord discovery* — run MERLIN on a padded region around the
   chosen window over a range of anomaly lengths.
4. *Voting* — Eq. 8 votes plus the mean-vote threshold (with the
   Sec. IV-G discord-fail exception) yield point-wise predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..discord.distance import znorm_subsequences
from ..discord.kernels import discord_mode
from ..discord.merlin import MerlinResult, merlin
from ..pipeline import FeaturePipeline, default_pipeline
from ..signal.windows import WindowPlan
from ..validation import ensure_series
from .config import TriADConfig
from .encoder import TriDomainEncoder
from .scoring import VoteResult, score_votes
from .trainer import TrainResult, train_encoder

__all__ = ["TriAD", "TriADDetection"]


@dataclass
class TriADDetection:
    """Everything TriAD produces for one test series.

    Keeps intermediate artifacts (per-domain similarity curves, candidate
    windows, MERLIN discords, votes) so detections stay interpretable —
    the transparency the paper highlights in Sec. III-D.
    """

    predictions: np.ndarray
    window: tuple[int, int]
    candidate_windows: dict[str, tuple[int, int]]
    similarity: dict[str, np.ndarray]
    window_starts: np.ndarray
    window_length: int
    discords: MerlinResult
    search_region: tuple[int, int]
    votes: VoteResult

    @property
    def candidate_intervals(self) -> list[tuple[int, int]]:
        """Deduplicated candidate window spans (the 'up to three')."""
        unique = sorted(set(self.candidate_windows.values()))
        return unique

    def describe(self, labels: np.ndarray | None = None) -> str:
        """Human-readable report of this detection (see :mod:`repro.viz`)."""
        from ..viz import detection_report

        return detection_report(self, labels)


class TriAD:
    """Self-supervised tri-domain anomaly detector.

    Usage::

        detector = TriAD(TriADConfig(epochs=20))
        detector.fit(train_series)
        detection = detector.detect(test_series)
        detection.predictions  # point-wise 0/1 labels
    """

    def __init__(
        self,
        config: TriADConfig | None = None,
        pipeline: FeaturePipeline | None = None,
    ) -> None:
        self.config = config or TriADConfig()
        self._pipeline = pipeline if pipeline is not None else default_pipeline()
        self._result: TrainResult | None = None
        self._train_series: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, train_series: np.ndarray) -> "TriAD":
        """Train the tri-domain encoder on anomaly-free data."""
        self._train_series = ensure_series(
            train_series, "train_series", min_length=4 * self.config.min_window
        )
        self._result = train_encoder(
            self._train_series, self.config, pipeline=self._pipeline
        )
        return self

    @property
    def encoder(self) -> TriDomainEncoder:
        return self._fitted().encoder

    @property
    def plan(self) -> WindowPlan:
        return self._fitted().plan

    @property
    def pipeline(self) -> FeaturePipeline:
        """The window/feature pipeline this detector windows through."""
        return self._pipeline

    @property
    def train_losses(self) -> list[float]:
        return self._fitted().train_losses

    def train_windows(
        self, stride: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Public accessor for the training-series window set.

        Returns ``(windows, starts)`` under the fitted plan's length and
        ``stride`` (the plan stride when omitted), served through the
        shared pipeline cache — consumers like the serving registry's
        calibration no longer re-window private detector state.
        """
        plan = self.plan
        if self._train_series is None:
            raise RuntimeError("TriAD must be fit() before use")
        return self._pipeline.windows(
            self._train_series, plan.length, stride or plan.stride
        )

    def _fitted(self) -> TrainResult:
        if self._result is None:
            raise RuntimeError("TriAD must be fit() before use")
        return self._result

    # ------------------------------------------------------------------
    # Representations and similarity ranking
    # ------------------------------------------------------------------
    def representations(
        self, windows: np.ndarray, cached: bool = False
    ) -> dict[str, np.ndarray]:
        """Per-domain L2-normalized representations for given windows.

        ``cached=True`` memoizes the feature-extraction stage through
        the pipeline — use it for window sets that recur (the training
        set, a test series swept across seeds), not for one-off
        content like live serve batches.
        """
        result = self._fitted()
        if cached:
            features = self._pipeline.features(
                windows, result.plan.period, self.config.domains
            )
        else:
            features = self._pipeline.extract(
                windows, result.plan.period, self.config.domains
            )
        with nn.no_grad():
            encoded = result.encoder(features)
        return {domain: r.data for domain, r in encoded.items()}

    def window_similarity(
        self, windows: np.ndarray, cached: bool = False
    ) -> dict[str, np.ndarray]:
        """Mean pairwise cosine similarity of each window per domain.

        Low similarity marks a window as deviant within its domain —
        the signal behind Fig. 11's similarity curves.
        """
        reps = self.representations(windows, cached=cached)
        similarity: dict[str, np.ndarray] = {}
        for domain, r in reps.items():
            gram = r @ r.T
            count = len(r)
            if count < 2:
                similarity[domain] = np.zeros(count)
                continue
            np.fill_diagonal(gram, 0.0)
            similarity[domain] = gram.sum(axis=1) / (count - 1)
        return similarity

    # ------------------------------------------------------------------
    # Inference pipeline
    # ------------------------------------------------------------------
    def _similarity_profile(
        self, test_series: np.ndarray
    ) -> tuple[dict[str, np.ndarray], np.ndarray, int]:
        """Window the series (cached) and rank every window per domain."""
        plan = self.plan
        windows, starts = self._pipeline.windows(test_series, plan.length, plan.stride)
        similarity = self.window_similarity(windows, cached=True)
        return similarity, starts, plan.length

    @staticmethod
    def _candidates_from(
        similarity: dict[str, np.ndarray], starts: np.ndarray, length: int
    ) -> dict[str, tuple[int, int]]:
        candidates: dict[str, tuple[int, int]] = {}
        for domain, scores in similarity.items():
            index = int(np.argmin(scores))
            start = int(starts[index])
            candidates[domain] = (start, start + length)
        return candidates

    @staticmethod
    def _top_picks_from(
        similarity: dict[str, np.ndarray],
        starts: np.ndarray,
        length: int,
        z: int,
    ) -> dict[str, list[tuple[int, int]]]:
        nominations: dict[str, list[tuple[int, int]]] = {}
        for domain, scores in similarity.items():
            remaining = scores.astype(np.float64).copy()
            picks: list[tuple[int, int]] = []
            for _ in range(z):
                if not np.isfinite(remaining).any():
                    break
                index = int(np.argmin(remaining))
                start = int(starts[index])
                picks.append((start, start + length))
                # Suppress neighbors of the chosen window.
                near = np.abs(starts - start) < length
                remaining[near] = np.inf
            nominations[domain] = picks
        return nominations

    def nominate_windows(
        self, test_series: np.ndarray
    ) -> tuple[dict[str, tuple[int, int]], dict[str, np.ndarray], np.ndarray, int]:
        """Stage 1: the most deviant window per domain."""
        similarity, starts, length = self._similarity_profile(test_series)
        candidates = self._candidates_from(similarity, starts, length)
        return candidates, similarity, starts, length

    def nominate_top_windows(
        self, test_series: np.ndarray, z: int | None = None
    ) -> dict[str, list[tuple[int, int]]]:
        """Generalized stage 1: the top-``z`` deviant windows per domain.

        The paper sets Z=1 because each UCR test set hides one event;
        with ``z > 1`` each domain nominates its ``z`` least-similar,
        mutually non-adjacent windows (minima closer than one window
        length to an already-picked window are suppressed), supporting
        multi-event streams.
        """
        z = z or self.config.top_z
        similarity, starts, length = self._similarity_profile(test_series)
        return self._top_picks_from(similarity, starts, length, z)

    def select_window(
        self, test_series: np.ndarray, candidates: dict[str, tuple[int, int]]
    ) -> tuple[int, int]:
        """Stage 2: pick the candidate farthest from every training window."""
        train = self._train_series
        if train is None:
            raise RuntimeError("TriAD must be fit() before use")
        length = self.plan.length
        stride = self.config.train_stride or max(length // 8, 1)
        train_windows = znorm_subsequences(train, length)[::stride]

        best_window, best_distance = None, -np.inf
        for window in sorted(set(candidates.values())):
            start, end = window
            segment = test_series[start:end]
            z = (segment - segment.mean()) / max(segment.std(), 1e-8)
            distances = np.sqrt(
                np.maximum(((train_windows - z) ** 2).sum(axis=1), 0.0)
            )
            nearest = float(distances.min())
            if nearest > best_distance:
                best_distance = nearest
                best_window = window
        assert best_window is not None
        return best_window

    def search_region(
        self, test_length: int, window: tuple[int, int]
    ) -> tuple[int, int]:
        """Padded region around the window handed to MERLIN (Sec. IV-B2)."""
        length = self.plan.length
        padding = self.config.merlin_padding
        if padding is None:
            padding = length
        lo = max(window[0] - padding, 0)
        hi = min(window[1] + padding, test_length)
        return lo, hi

    def run_discord_search(
        self, test_series: np.ndarray, region: tuple[int, int]
    ) -> MerlinResult:
        """Stage 3: MERLIN over the padded region at varying lengths."""
        lo, hi = region
        segment = test_series[lo:hi]
        min_length = self.config.merlin_min_length
        max_length = self.config.merlin_max_length
        if max_length is None:
            max_length = min(self.plan.length, (hi - lo) // 2)
        step = self.config.merlin_step
        if step is None:
            step = max((max_length - min_length) // 24, 1)
        with discord_mode(self.config.discord_mode):
            return merlin(segment, min_length, max_length, step=step)

    def detect(self, test_series: np.ndarray) -> TriADDetection:
        """Full inference: nominate, select, discord-search, vote."""
        test_series = ensure_series(
            test_series, "test_series", min_length=self.plan.length
        )
        # One windowing + one encoder pass feeds both the per-domain
        # argmin candidates and the top-Z nomination pool (the seed code
        # re-windowed and re-encoded the series for top_z > 1).
        similarity, starts, length = self._similarity_profile(test_series)
        candidates = self._candidates_from(similarity, starts, length)
        if self.config.top_z > 1:
            extra = self._top_picks_from(similarity, starts, length, self.config.top_z)
            pool = {
                f"{domain}#{i}": window
                for domain, picks in extra.items()
                for i, window in enumerate(picks)
            }
            window = self.select_window(test_series, pool)
        else:
            window = self.select_window(test_series, candidates)
        region = self.search_region(len(test_series), window)
        discords = self.run_discord_search(test_series, region)
        # exception_fraction=0 disables the Sec. IV-G fall-back entirely
        # (the inside-mass ratio can never fall below zero).
        exception_fraction = 0.05 if self.config.exception_enabled else 0.0
        if self.config.scoring == "weighted":
            from .weighting import score_votes_weighted

            votes = score_votes_weighted(
                test_length=len(test_series),
                window=window,
                discords=discords,
                search_offset=region[0],
                exception_fraction=exception_fraction,
            )
        else:
            votes = score_votes(
                test_length=len(test_series),
                window=window,
                discords=discords,
                search_offset=region[0],
                exception_fraction=exception_fraction,
            )
        return TriADDetection(
            predictions=votes.predictions,

            window=window,
            candidate_windows=candidates,
            similarity=similarity,
            window_starts=starts,
            window_length=length,
            discords=discords,
            search_region=region,
            votes=votes,
        )

    def predict(self, test_series: np.ndarray) -> np.ndarray:
        """Point-wise binary predictions (uniform harness interface)."""
        return self.detect(test_series).predictions
