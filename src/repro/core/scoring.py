"""Anomaly voting and thresholding (paper Eq. 8, Sec. III-D3, Sec. IV-G).

Every test point collects votes: one if it lies inside the TriAD-flagged
window, plus one per discord (one per searched length) that covers it.
Points with votes above a threshold — by default the mean vote among
points that received any vote — are predicted anomalous.

The *discord-fail exception* (Sec. IV-G): when the search window holds
more anomalous than normal data, MERLIN's discords all land on the
*normal* padding instead.  If (almost) no discord mass falls inside the
flagged window, TriAD falls back to predicting the entire window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..discord.merlin import MerlinResult

__all__ = ["VoteResult", "accumulate_votes", "threshold_votes", "score_votes"]


@dataclass
class VoteResult:
    """Per-point votes and the resulting binary predictions."""

    votes: np.ndarray
    threshold: float
    predictions: np.ndarray
    exception_applied: bool


def accumulate_votes(
    test_length: int,
    window: tuple[int, int],
    discords: MerlinResult,
    search_offset: int,
) -> np.ndarray:
    """Eq. 8: sum the TriAD window vote and the per-length discord votes.

    ``search_offset`` maps discord indices (relative to the padded
    search region) back to absolute test coordinates.
    """
    votes = np.zeros(test_length, dtype=np.float64)
    start, end = window
    votes[start:end] += 1.0
    for discord in discords.discords:
        lo = search_offset + discord.index
        hi = lo + discord.length
        lo = max(lo, 0)
        hi = min(hi, test_length)
        if hi > lo:
            votes[lo:hi] += 1.0
    return votes


def threshold_votes(votes: np.ndarray, percentile: float | None = None) -> float:
    """Voting threshold delta.

    Default (``percentile=None``) is the paper's simple rule: the mean of
    the votes over points that received at least one vote.  Passing a
    percentile (e.g. 90) reproduces the threshold study of Fig. 13.
    """
    voted = votes[votes > 0]
    if voted.size == 0:
        return 0.0
    if percentile is None:
        return float(voted.mean())
    return float(np.percentile(voted, percentile))


def score_votes(
    test_length: int,
    window: tuple[int, int],
    discords: MerlinResult,
    search_offset: int,
    percentile: float | None = None,
    exception_fraction: float = 0.05,
) -> VoteResult:
    """Full scoring pass: votes, threshold, exception, predictions.

    Parameters
    ----------
    exception_fraction:
        If less than this fraction of the total discord vote mass falls
        inside the flagged window, the discord-fail exception fires and
        the whole window is predicted anomalous.
    """
    votes = accumulate_votes(test_length, window, discords, search_offset)
    start, end = window

    discord_votes = votes.copy()
    discord_votes[start:end] -= 1.0  # remove the window's own vote
    total_mass = float(discord_votes.sum())
    inside_mass = float(discord_votes[start:end].sum())
    exception = total_mass > 0 and inside_mass / total_mass < exception_fraction

    if exception:
        predictions = np.zeros(test_length, dtype=np.int64)
        predictions[start:end] = 1
        return VoteResult(
            votes=votes,
            threshold=float("nan"),
            predictions=predictions,
            exception_applied=True,
        )

    delta = threshold_votes(votes, percentile)
    predictions = (votes > delta).astype(np.int64)
    if not predictions.any():
        # Degenerate fall-back: never return an empty prediction — flag
        # the highest-voted points so downstream metrics stay defined.
        predictions = (votes >= votes.max()).astype(np.int64) if votes.max() > 0 else predictions
        if not predictions.any():
            predictions[start:end] = 1
    return VoteResult(
        votes=votes, threshold=delta, predictions=predictions, exception_applied=False
    )
