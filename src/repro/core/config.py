"""TriAD configuration.

Defaults follow the paper's Sec. IV-A3/IV-A4 settings: 6 residual
blocks, h_d = 32, alpha = 0.4, batch size 8, learning rate 1e-3,
20 epochs, 10% validation split, windows of 2.5 periods with a
quarter-window stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..pipeline.features import DOMAINS

__all__ = ["TriADConfig", "DOMAINS"]


@dataclass(frozen=True)
class TriADConfig:
    """Hyper-parameters for the TriAD detector.

    Attributes
    ----------
    depth:
        Number of dilated residual blocks per encoder (paper: 6).
    hidden_dim:
        Encoder representation width ``h_d`` (paper: 32).
    alpha:
        Weight of the inter-domain loss in Eq. 7 (paper: 0.4).
    temperature:
        Softmax temperature on representation dot products.  The paper's
        Eq. 5–6 use raw dot products; we L2-normalize representations and
        divide by this temperature for numerical stability — standard
        InfoNCE practice that leaves the objective's optima unchanged.
    domains:
        Which encoders to instantiate; the ablation study (Fig. 9)
        removes one at a time.
    use_intra / use_inter:
        Loss-term toggles for the ablation study.
    merlin_step:
        Stride over candidate anomaly lengths in the MERLIN stage; 1
        reproduces the paper's full sweep, larger values bound runtime.
    discord_mode:
        Kernel family used by the MERLIN stage's distance math — one of
        ``repro.discord.DISCORD_MODES``.  ``"auto"`` (default) picks the
        fast blocked/FFT path; ``"reference"`` pins the original scalar
        loops (the equivalence oracle).  Results are identical across
        modes; only speed differs.
    train_stride:
        Stride used when scanning the training series during
        single-window selection (paper analyzes the worst case of 1).
    data_parallel_workers:
        When > 1, the trainer evaluates that many contrastive batches
        concurrently in a ``multiprocessing.Pool`` and applies their
        averaged gradients as one optimizer step.  Off (0) by default;
        the parallel schedule is *not* bit-identical to the serial loop
        (fewer, larger effective steps and a different augmentation rng
        stream).
    """

    depth: int = 6
    hidden_dim: int = 32
    kernel_size: int = 3
    alpha: float = 0.4
    temperature: float = 0.2
    batch_size: int = 8
    learning_rate: float = 1e-3
    epochs: int = 20
    validation_fraction: float = 0.1
    periods_per_window: float = 2.5
    stride_fraction: float = 0.25
    min_window: int = 16
    max_window: int = 512
    domains: tuple[str, ...] = DOMAINS
    use_intra: bool = True
    use_inter: bool = True
    grad_clip: float = 5.0
    seed: int = 0
    top_z: int = 1
    scoring: str = "uniform"
    exception_enabled: bool = True
    merlin_min_length: int = 4
    merlin_max_length: int | None = None
    merlin_step: int | None = None
    merlin_padding: int | None = None
    discord_mode: str = "auto"
    train_stride: int | None = None
    data_parallel_workers: int = 0

    def __post_init__(self) -> None:
        from ..discord.kernels import DISCORD_MODES

        if self.discord_mode not in DISCORD_MODES:
            raise ValueError(
                f"discord_mode must be one of {DISCORD_MODES}, "
                f"got {self.discord_mode!r}"
            )
        if self.data_parallel_workers < 0:
            raise ValueError("data_parallel_workers must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.depth < 1:
            raise ValueError("depth must be positive")
        unknown = set(self.domains) - set(DOMAINS)
        if unknown:
            raise ValueError(f"unknown domains: {sorted(unknown)}")
        if not self.domains:
            raise ValueError("at least one domain is required")
        if not (self.use_intra or self.use_inter):
            raise ValueError("at least one contrastive loss term is required")
        if self.scoring not in ("uniform", "weighted"):
            raise ValueError("scoring must be 'uniform' (Eq. 8) or 'weighted'")
        if self.top_z < 1:
            raise ValueError("top_z must be positive")

    def with_overrides(self, **kwargs) -> "TriADConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
