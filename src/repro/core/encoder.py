"""TriAD's dilated-convolution encoders (paper Sec. III-B).

Each domain has its own encoder: a stack of residual blocks whose
dilation doubles per block, growing the receptive field exponentially
so both short- and long-range patterns are captured.  The per-domain
latent ``(batch, h_d, length)`` maps are funneled through two dense
layers *shared across domains* into a one-dimensional representation
``r`` of shape ``(batch, length)``, which feeds the contrastive losses
and the window similarity ranking.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .config import TriADConfig
from .features import domain_channels

__all__ = ["ResidualBlock", "DilatedConvEncoder", "TriDomainEncoder"]


class ResidualBlock(nn.Module):
    """Two same-padding dilated convolutions with a skip connection."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = nn.Conv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, rng=rng
        )
        self.conv2 = nn.Conv1d(
            out_channels, out_channels, kernel_size, dilation=dilation, rng=rng
        )
        self.skip = (
            nn.Conv1d(in_channels, out_channels, 1, rng=rng)
            if in_channels != out_channels
            else nn.Identity()
        )

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.conv2(self.conv1(x).relu())
        return (hidden + self.skip(x)).relu()


class DilatedConvEncoder(nn.Module):
    """Stack of residual blocks with dilation doubling per block."""

    def __init__(self, in_channels: int, config: TriADConfig, rng: np.random.Generator) -> None:
        super().__init__()
        blocks = []
        channels = in_channels
        for level in range(config.depth):
            blocks.append(
                ResidualBlock(
                    channels,
                    config.hidden_dim,
                    config.kernel_size,
                    dilation=2**level,
                    rng=rng,
                )
            )
            channels = config.hidden_dim
        self.blocks = nn.Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, channels, length)`` to ``(batch, h_d, length)``."""
        return self.blocks(x)


class TriDomainEncoder(nn.Module):
    """Per-domain encoders plus the shared dense projection head.

    ``forward`` returns L2-normalized representations so that dot
    products in the contrastive losses are bounded cosine similarities
    (see :class:`repro.core.config.TriADConfig.temperature`).
    """

    def __init__(self, config: TriADConfig, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(config.seed)
        self.config = config
        self.domains = config.domains
        for domain in config.domains:
            encoder = DilatedConvEncoder(domain_channels(domain), config, rng)
            setattr(self, f"encoder_{domain}", encoder)
        self.dense1 = nn.Linear(config.hidden_dim, config.hidden_dim, rng=rng)
        self.dense2 = nn.Linear(config.hidden_dim, 1, rng=rng)

    def encode(self, features: np.ndarray | Tensor, domain: str) -> Tensor:
        """Encode one domain's ``(batch, channels, length)`` features."""
        if domain not in self.domains:
            raise KeyError(f"domain {domain!r} not active in this encoder")
        encoder: DilatedConvEncoder = getattr(self, f"encoder_{domain}")
        hidden = encoder(nn.as_tensor(features))  # (B, h_d, L)
        hidden = hidden.transpose(0, 2, 1)  # (B, L, h_d)
        projected = self.dense2(self.dense1(hidden).relu())  # (B, L, 1)
        batch, length, _ = projected.shape
        r = projected.reshape(batch, length)
        norm = ((r * r).sum(axis=-1, keepdims=True) + 1e-12).sqrt()
        return r / norm

    def forward(self, features_by_domain: dict[str, np.ndarray]) -> dict[str, Tensor]:
        """Encode every active domain; returns ``{domain: (batch, length)}``."""
        return {
            domain: self.encode(features_by_domain[domain], domain)
            for domain in self.domains
        }
