"""Intra- and inter-domain contrastive losses (paper Eq. 5-7).

*Intra-domain* (Eq. 5): within one domain, original windows in a batch
attract each other (shared normal patterns) and repel their augmented
counterparts (synthetic anomalies).

*Inter-domain* (Eq. 6): a window's representation in one domain attracts
same-domain representations of other windows while repelling its own
representations from the *other* domains, forcing each domain to encode
distinct information.

Representations arrive L2-normalized from the encoder; dot products are
divided by a temperature (see config) — an implementation detail that
stabilizes ``exp`` without changing the objectives' optima.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor, stack

__all__ = ["intra_domain_loss", "inter_domain_loss", "total_contrastive_loss"]


def _pairwise_exp(a: Tensor, b: Tensor, temperature: float) -> Tensor:
    """``exp(a_i . b_j / temperature)`` for all batch pairs — (B, B)."""
    return ((a @ b.transpose()) * (1.0 / temperature)).exp()


def intra_domain_loss(r: Tensor, r_aug: Tensor, temperature: float = 0.2) -> Tensor:
    """Eq. 5 averaged over the batch for one domain.

    Parameters
    ----------
    r, r_aug:
        Representations of the original and augmented windows,
        each of shape ``(batch, length)``.
    """
    batch = r.shape[0]
    positives = _pairwise_exp(r, r, temperature)  # originals vs originals
    negatives = _pairwise_exp(r, r_aug, temperature)  # originals vs augmented
    # sim(r_i, r_i^+) = sum_{j != i} exp(r_i . r_j): mask the diagonal.
    off_diagonal = 1.0 - Tensor(np.eye(batch))
    pos_term = (positives * off_diagonal).sum(axis=1)
    neg_term = negatives.sum(axis=1)
    loss = -((pos_term / (pos_term + neg_term)).log())
    return loss.mean()


def inter_domain_loss(
    representations: dict[str, Tensor], temperature: float = 0.2
) -> Tensor:
    """Eq. 6 averaged over batch and domains.

    ``representations`` maps each domain to its ``(batch, length)``
    original-window representations.  With a single active domain the
    term is zero by construction (no cross-domain negatives exist).
    """
    domains = list(representations)
    if len(domains) < 2:
        first = representations[domains[0]]
        return (first * 0.0).sum()
    losses = []
    for domain in domains:
        r = representations[domain]
        batch = r.shape[0]
        positives = _pairwise_exp(r, r, temperature)
        off_diagonal = 1.0 - Tensor(np.eye(batch))
        pos_term = (positives * off_diagonal).sum(axis=1)
        # Negatives: same window index, different domain (elementwise dots).
        neg_parts = []
        for other in domains:
            if other == domain:
                continue
            dots = (r * representations[other]).sum(axis=1) * (1.0 / temperature)
            neg_parts.append(dots.exp())
        neg_term = stack(neg_parts, axis=0).sum(axis=0)
        losses.append(-((pos_term / (pos_term + neg_term)).log()).mean())
    return stack(losses, axis=0).mean()


def total_contrastive_loss(
    originals: dict[str, Tensor],
    augmented: dict[str, Tensor],
    alpha: float = 0.4,
    temperature: float = 0.2,
    use_intra: bool = True,
    use_inter: bool = True,
) -> Tensor:
    """Eq. 7: ``alpha * inter + (1 - alpha) * intra``.

    The intra term is averaged over domains.  Ablations can disable
    either term; the remaining term keeps its Eq. 7 weight so parameter
    studies over ``alpha`` stay interpretable.
    """
    domains = list(originals)
    terms = []
    if use_intra:
        intra = stack(
            [intra_domain_loss(originals[d], augmented[d], temperature) for d in domains],
            axis=0,
        ).mean()
        terms.append(intra * (1.0 - alpha))
    if use_inter:
        terms.append(inter_domain_loss(originals, temperature) * alpha)
    if not terms:
        raise ValueError("at least one loss term must be enabled")
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total
