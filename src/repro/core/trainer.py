"""Training loop for TriAD (paper Sec. IV-A3).

Trains the tri-domain encoder on *normal data only*: windows of the
training split paired with freshly augmented variants each epoch,
optimized with Adam under the combined contrastive loss.  A 10%
validation split tracks generalization and the best-validation weights
are restored at the end.

The loop carries numerical guard rails
(:class:`~repro.runtime.DivergenceGuard`): a NaN/Inf epoch loss or an
exploding gradient rolls the encoder back to the last good weights with
a learning-rate backoff (rebuilding the optimizer, whose moments the
bad step poisoned); after too many rollbacks training aborts and still
returns the best-validation encoder seen so far, flagged
``diverged=True``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn, obs
from ..augment import augment_batch
from ..pipeline import FeaturePipeline, default_pipeline, extract_all_domains
from ..runtime import DivergenceGuard
from ..signal.windows import WindowPlan
from ..validation import ensure_series, ensure_variation
from .config import TriADConfig
from .encoder import TriDomainEncoder
from .losses import total_contrastive_loss

__all__ = ["TrainResult", "train_encoder", "contrastive_forward_fusion"]

# The contrastive loss needs representations of both the original and the
# augmented batch; fusing them into one [originals; augmented] forward
# halves the graph.  Every encoder op is row-independent, so the fused
# pass is mathematically identical — bitwise up to BLAS blocking, which
# may round the last ulp differently for the doubled row count.  The
# toggle exists so scripts/bench_nn.py can time the exact
# pre-optimization two-pass loop as its baseline.
_FUSE_CONTRASTIVE_FORWARD = True


@contextlib.contextmanager
def contrastive_forward_fusion(enabled: bool):
    """Context manager pinning the fused/two-pass contrastive forward."""
    global _FUSE_CONTRASTIVE_FORWARD
    previous = _FUSE_CONTRASTIVE_FORWARD
    _FUSE_CONTRASTIVE_FORWARD = bool(enabled)
    try:
        yield
    finally:
        _FUSE_CONTRASTIVE_FORWARD = previous


def _contrastive_representations(
    encoder: TriDomainEncoder,
    original_features: dict[str, np.ndarray],
    augmented_features: dict[str, np.ndarray],
    size: int,
):
    """Encode originals and augmented variants, fused when enabled."""
    if not _FUSE_CONTRASTIVE_FORWARD:
        return encoder(original_features), encoder(augmented_features)
    fused = encoder(
        {
            d: np.concatenate([a, augmented_features[d]])
            for d, a in original_features.items()
        }
    )
    r_orig = {d: r[:size] for d, r in fused.items()}
    r_aug = {d: r[size:] for d, r in fused.items()}
    return r_orig, r_aug


@dataclass
class TrainResult:
    """A fitted encoder plus the segmentation plan and loss history.

    ``rollbacks`` counts divergence-guard interventions; ``diverged``
    marks a run aborted after exhausting its rollback budget (the
    encoder still holds the best-validation weights observed).
    """

    encoder: TriDomainEncoder
    plan: WindowPlan
    config: TriADConfig
    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    rollbacks: int = 0
    diverged: bool = False


def _batches(count: int, batch_size: int, rng: np.random.Generator):
    """Yield shuffled index batches; drop sub-2 remainders (a contrastive
    batch needs at least two windows to form positive pairs)."""
    order = rng.permutation(count)
    for start in range(0, count, batch_size):
        batch = order[start : start + batch_size]
        if len(batch) >= 2:
            yield batch


def _worker_grads(payload):
    """Pool worker: one contrastive batch forward+backward on a fresh
    encoder rebuilt from ``state``.  Returns ``(loss, grads)`` with
    ``grads=None`` when the loss is non-finite (the serial loop's
    poisoned-batch rule)."""
    state, batch, batch_features, period, config, aug_seed = payload
    encoder = TriDomainEncoder(config, rng=np.random.default_rng(config.seed))
    encoder.load_state_dict(state)
    encoder.train()
    rng = np.random.default_rng(aug_seed)
    augmented = augment_batch(batch, rng)
    if batch_features is None:
        batch_features = extract_all_domains(batch, period, config.domains)
    augmented_features = extract_all_domains(augmented, period, config.domains)
    r_orig, r_aug = _contrastive_representations(
        encoder, batch_features, augmented_features, len(batch)
    )
    loss = total_contrastive_loss(
        r_orig,
        r_aug,
        alpha=config.alpha,
        temperature=config.temperature,
        use_intra=config.use_intra,
        use_inter=config.use_inter,
    )
    value = float(loss.data)
    if not np.isfinite(value):
        return value, None
    loss.backward()
    grads = [
        np.asarray(p.grad) if p.grad is not None else np.zeros_like(p.data)
        for p in encoder.parameters()
    ]
    return value, grads


def _epoch_loss_parallel(
    encoder: TriDomainEncoder,
    windows: np.ndarray,
    period: int,
    config: TriADConfig,
    rng: np.random.Generator,
    optimizer: nn.Adam,
    grad_norms: list[float] | None,
    features: dict[str, np.ndarray] | None,
    pool,
    workers: int,
) -> float:
    """Data-parallel epoch: groups of ``workers`` batches are evaluated
    concurrently against the *same* weights and their finite gradients
    averaged into one optimizer step.

    Deliberately not bit-identical to the serial loop — the effective
    step count shrinks by the group size and each batch augments from
    its own seeded rng — which is why the knob is off by default and the
    equivalence benchmarks always run serial.
    """
    batches = list(_batches(len(windows), config.batch_size, rng))
    losses: list[float] = []
    params = encoder.parameters()
    for start in range(0, len(batches), workers):
        group = batches[start : start + workers]
        state = encoder.state_dict()
        payloads = []
        for batch_idx in group:
            aug_seed = int(rng.integers(np.iinfo(np.int64).max))
            batch_features = (
                {d: a[batch_idx] for d, a in features.items()}
                if features is not None
                else None
            )
            payloads.append(
                (state, windows[batch_idx], batch_features, period, config, aug_seed)
            )
        results = pool.map(_worker_grads, payloads)
        losses.extend(value for value, _ in results)
        grad_sets = [grads for _, grads in results if grads is not None]
        if not grad_sets:
            continue
        for param, *per_batch in zip(params, *grad_sets):
            param.grad = np.mean(per_batch, axis=0)
        norm = nn.clip_grad_norm(params, config.grad_clip)
        if grad_norms is not None:
            grad_norms.append(norm)
        optimizer.step()
        optimizer.zero_grad()
    return float(np.mean(losses)) if losses else 0.0


def _epoch_loss(
    encoder: TriDomainEncoder,
    windows: np.ndarray,
    period: int,
    config: TriADConfig,
    rng: np.random.Generator,
    optimizer: nn.Adam | None,
    grad_norms: list[float] | None = None,
    features: dict[str, np.ndarray] | None = None,
) -> float:
    """One pass over ``windows``; updates weights when ``optimizer`` given.

    ``features`` are the precomputed per-domain features of ``windows``
    (row-aligned).  When given, each batch's original-window features
    are sliced out instead of re-extracted — bit-identical because
    extraction is row-independent, and the reason the epoch loop no
    longer extracts once per batch per epoch.  Augmented windows are
    fresh content every epoch, so their features are always extracted.

    A batch whose loss is non-finite is recorded but *not* backpropagated
    (its gradients would poison the weights and optimizer moments); the
    NaN still surfaces in the epoch mean so the divergence guard fires.
    Pre-clip gradient norms are appended to ``grad_norms`` when given.
    """
    losses = []
    for batch_idx in _batches(len(windows), config.batch_size, rng):
        batch = windows[batch_idx]
        augmented = augment_batch(batch, rng)
        if features is not None:
            original_features = {d: a[batch_idx] for d, a in features.items()}
        else:
            original_features = extract_all_domains(batch, period, config.domains)
        augmented_features = extract_all_domains(augmented, period, config.domains)
        r_orig, r_aug = _contrastive_representations(
            encoder, original_features, augmented_features, len(batch)
        )
        loss = total_contrastive_loss(
            r_orig,
            r_aug,
            alpha=config.alpha,
            temperature=config.temperature,
            use_intra=config.use_intra,
            use_inter=config.use_inter,
        )
        value = float(loss.data)
        if optimizer is not None and np.isfinite(value):
            optimizer.zero_grad()
            loss.backward()
            norm = nn.clip_grad_norm(encoder.parameters(), config.grad_clip)
            if grad_norms is not None:
                grad_norms.append(norm)
            optimizer.step()
        losses.append(value)
    return float(np.mean(losses)) if losses else 0.0


def train_encoder(
    train_series: np.ndarray,
    config: TriADConfig,
    guard: DivergenceGuard | None = None,
    pipeline: FeaturePipeline | None = None,
) -> TrainResult:
    """Fit a :class:`TriDomainEncoder` on an anomaly-free training series.

    Returns the encoder with its best-validation weights restored,
    together with the window plan used for segmentation.  ``guard``
    customizes divergence handling (rollback budget, LR backoff); the
    default tolerates two rollbacks before aborting.  ``pipeline``
    supplies windowing and memoized feature extraction (the shared
    :func:`~repro.pipeline.default_pipeline` when omitted): per-domain
    features of the training windows are computed once per window set —
    and reused across seeds, since window content is seed-independent —
    instead of once per batch per epoch.

    Raises ``ValueError`` when the series is non-finite, constant, or so
    short that the window plan cannot form a single contrastive batch.
    """
    train_series = ensure_series(train_series, "train_series")
    ensure_variation(train_series, "train_series")
    guard = guard if guard is not None else DivergenceGuard()
    pipeline = pipeline if pipeline is not None else default_pipeline()
    rng = np.random.default_rng(config.seed)
    plan = pipeline.plan_for(train_series, config)
    windows, _ = pipeline.windows(train_series, plan.length, plan.stride)
    all_features = pipeline.features(windows, plan.period, config.domains)

    # Hold out a random validation slice (paper: 10%).  Features are
    # sliced with the same permutation so each split stays row-aligned
    # with its windows.
    count = len(windows)
    val_count = max(int(round(count * config.validation_fraction)), 1) if count > 4 else 0
    order = rng.permutation(count)
    val_idx = order[:val_count]
    fit_idx = order[val_count:]
    val_windows = windows[val_idx]
    fit_windows = windows[fit_idx]
    val_features = {d: a[val_idx] for d, a in all_features.items()}
    fit_features = {d: a[fit_idx] for d, a in all_features.items()}

    if len(fit_windows) < 2:
        raise ValueError(
            f"window plan yields {len(fit_windows)} training window(s) of "
            f"length {plan.length} (series length {len(train_series)}); a "
            "contrastive batch needs at least 2 — provide a longer series "
            "or lower min_window / periods_per_window"
        )

    encoder = TriDomainEncoder(config, rng=np.random.default_rng(config.seed))
    learning_rate = config.learning_rate
    optimizer = nn.Adam(encoder.parameters(), lr=learning_rate)
    result = TrainResult(encoder=encoder, plan=plan, config=config)

    workers = config.data_parallel_workers
    pool = None
    if workers > 1:
        import multiprocessing

        pool = multiprocessing.Pool(processes=workers)

    best_val = np.inf
    best_state = encoder.state_dict()
    last_good = encoder.state_dict()
    try:
        with obs.span(
            "trainer.train_encoder",
            epochs=config.epochs,
            windows=len(fit_windows),
            window_length=plan.length,
        ):
            for epoch in range(config.epochs):
                encoder.train()
                grad_norms: list[float] = []
                with obs.span("trainer.epoch"):
                    if pool is not None:
                        train_loss = _epoch_loss_parallel(
                            encoder, fit_windows, plan.period, config, rng,
                            optimizer, grad_norms, fit_features, pool, workers,
                        )
                    else:
                        train_loss = _epoch_loss(
                            encoder, fit_windows, plan.period, config, rng,
                            optimizer, grad_norms, features=fit_features,
                        )
                worst_norm = max(grad_norms) if grad_norms else None
                obs.gauge("trainer.lr", learning_rate)
                if worst_norm is not None:
                    obs.observe("trainer.grad_norm", worst_norm)
                verdict = guard.assess(train_loss, worst_norm)
                if verdict != "ok":
                    # Roll back to the last finite weights; the optimizer
                    # moments may be poisoned, so rebuild it at the
                    # backed-off rate.
                    encoder.load_state_dict(last_good)
                    learning_rate = guard.backed_off_lr(learning_rate)
                    optimizer = nn.Adam(encoder.parameters(), lr=learning_rate)
                    result.rollbacks += 1
                    result.train_losses.append(train_loss)
                    obs.incr("trainer.rollbacks")
                    obs.event(
                        "trainer.rollback",
                        epoch=epoch,
                        verdict=verdict,
                        train_loss=train_loss,
                        grad_norm=worst_norm,
                        backed_off_lr=learning_rate,
                    )
                    if verdict == "abort":
                        result.diverged = True
                        obs.incr("trainer.divergence_aborts")
                        obs.event("trainer.divergence_abort", epoch=epoch,
                                  rollbacks=result.rollbacks)
                        break
                    continue
                result.train_losses.append(train_loss)
                last_good = encoder.state_dict()
                val_loss = None
                if val_count:
                    encoder.eval()
                    with nn.no_grad():
                        val_loss = _epoch_loss(
                            encoder, val_windows, plan.period, config, rng,
                            optimizer=None, features=val_features,
                        )
                    result.val_losses.append(val_loss)
                    if val_loss < best_val:
                        best_val = val_loss
                        best_state = encoder.state_dict()
                obs.event(
                    "trainer.epoch",
                    epoch=epoch,
                    train_loss=train_loss,
                    val_loss=val_loss,
                    grad_norm=worst_norm,
                    lr=learning_rate,
                )
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    if val_count and result.val_losses:
        encoder.load_state_dict(best_state)
    elif result.diverged:
        encoder.load_state_dict(last_good)
    encoder.eval()
    return result
