"""Training loop for TriAD (paper Sec. IV-A3).

Trains the tri-domain encoder on *normal data only*: windows of the
training split paired with freshly augmented variants each epoch,
optimized with Adam under the combined contrastive loss.  A 10%
validation split tracks generalization and the best-validation weights
are restored at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..augment import augment_batch
from ..signal.windows import WindowPlan, plan_windows, sliding_windows
from .config import TriADConfig
from .encoder import TriDomainEncoder
from .features import extract_all_domains
from .losses import total_contrastive_loss

__all__ = ["TrainResult", "train_encoder"]


@dataclass
class TrainResult:
    """A fitted encoder plus the segmentation plan and loss history."""

    encoder: TriDomainEncoder
    plan: WindowPlan
    config: TriADConfig
    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)


def _batches(count: int, batch_size: int, rng: np.random.Generator):
    """Yield shuffled index batches; drop sub-2 remainders (a contrastive
    batch needs at least two windows to form positive pairs)."""
    order = rng.permutation(count)
    for start in range(0, count, batch_size):
        batch = order[start : start + batch_size]
        if len(batch) >= 2:
            yield batch


def _epoch_loss(
    encoder: TriDomainEncoder,
    windows: np.ndarray,
    period: int,
    config: TriADConfig,
    rng: np.random.Generator,
    optimizer: nn.Adam | None,
) -> float:
    """One pass over ``windows``; updates weights when ``optimizer`` given."""
    losses = []
    for batch_idx in _batches(len(windows), config.batch_size, rng):
        batch = windows[batch_idx]
        augmented = augment_batch(batch, rng)
        original_features = extract_all_domains(batch, period, config.domains)
        augmented_features = extract_all_domains(augmented, period, config.domains)
        r_orig = encoder(original_features)
        r_aug = encoder(augmented_features)
        loss = total_contrastive_loss(
            r_orig,
            r_aug,
            alpha=config.alpha,
            temperature=config.temperature,
            use_intra=config.use_intra,
            use_inter=config.use_inter,
        )
        if optimizer is not None:
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(encoder.parameters(), config.grad_clip)
            optimizer.step()
        losses.append(float(loss.data))
    return float(np.mean(losses)) if losses else 0.0


def train_encoder(train_series: np.ndarray, config: TriADConfig) -> TrainResult:
    """Fit a :class:`TriDomainEncoder` on an anomaly-free training series.

    Returns the encoder with its best-validation weights restored,
    together with the window plan used for segmentation.
    """
    train_series = np.asarray(train_series, dtype=np.float64)
    rng = np.random.default_rng(config.seed)
    plan = plan_windows(
        train_series,
        periods_per_window=config.periods_per_window,
        stride_fraction=config.stride_fraction,
        min_length=config.min_window,
        max_length=config.max_window,
    )
    windows, _ = sliding_windows(train_series, plan.length, plan.stride)

    # Hold out a random validation slice (paper: 10%).
    count = len(windows)
    val_count = max(int(round(count * config.validation_fraction)), 1) if count > 4 else 0
    order = rng.permutation(count)
    val_windows = windows[order[:val_count]]
    fit_windows = windows[order[val_count:]]

    encoder = TriDomainEncoder(config, rng=np.random.default_rng(config.seed))
    optimizer = nn.Adam(encoder.parameters(), lr=config.learning_rate)
    result = TrainResult(encoder=encoder, plan=plan, config=config)

    best_val = np.inf
    best_state = encoder.state_dict()
    for _ in range(config.epochs):
        encoder.train()
        train_loss = _epoch_loss(encoder, fit_windows, plan.period, config, rng, optimizer)
        result.train_losses.append(train_loss)
        if val_count:
            encoder.eval()
            with nn.no_grad():
                val_loss = _epoch_loss(
                    encoder, val_windows, plan.period, config, rng, optimizer=None
                )
            result.val_losses.append(val_loss)
            if val_loss < best_val:
                best_val = val_loss
                best_state = encoder.state_dict()
    if val_count and result.val_losses:
        encoder.load_state_dict(best_state)
    encoder.eval()
    return result
