"""Tri-domain feature extraction (paper Sec. III-B).

Each window yields three views:

- *temporal*: the z-normalized raw window, 1 channel;
- *frequency*: Table I's spectral amplitude/phase/power, 3 channels;
- *residual*: the window with its periodic structure removed, 1 channel.
"""

from __future__ import annotations

import numpy as np

from ..signal.decompose import residual_component
from ..signal.fft import frequency_features
from ..signal.normalize import zscore
from .config import DOMAINS

__all__ = ["domain_channels", "extract_domain", "extract_all_domains"]


def domain_channels(domain: str) -> int:
    """Input-channel count per domain (1/3/1 as in the paper)."""
    if domain == "frequency":
        return 3
    if domain in DOMAINS:
        return 1
    raise KeyError(f"unknown domain {domain!r}")


def extract_domain(windows: np.ndarray, domain: str, period: int) -> np.ndarray:
    """Extract one domain's features from a batch of windows.

    Parameters
    ----------
    windows:
        Array of shape ``(batch, length)``.
    domain:
        One of ``temporal``, ``frequency``, ``residual``.
    period:
        Dataset period (used by the residual decomposition).

    Returns
    -------
    Array of shape ``(batch, channels, length)``.
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
    if domain == "temporal":
        return zscore(windows, axis=-1)[:, None, :]
    if domain == "frequency":
        return frequency_features(windows)
    if domain == "residual":
        residuals = np.stack([residual_component(w, period) for w in windows])
        return residuals[:, None, :]
    raise KeyError(f"unknown domain {domain!r}")


def extract_all_domains(
    windows: np.ndarray, period: int, domains: tuple[str, ...] = DOMAINS
) -> dict[str, np.ndarray]:
    """Extract every requested domain for a batch of windows."""
    return {domain: extract_domain(windows, domain, period) for domain in domains}
