"""Tri-domain feature extraction (paper Sec. III-B) — compatibility shim.

The extraction primitives now live in :mod:`repro.pipeline.features`
so the pipeline layer can memoize windowing *and* featurization without
importing upward into ``core``.  Import from here or from
``repro.pipeline`` — they are the same functions.
"""

from __future__ import annotations

from ..pipeline.features import (
    DOMAINS,
    domain_channels,
    extract_all_domains,
    extract_domain,
)

__all__ = ["DOMAINS", "domain_channels", "extract_domain", "extract_all_domains"]
