"""Weighted anomaly scoring — the paper's stated future work.

Sec. III-D3: "in future research, we anticipate that an enhanced scoring
function, possibly integrating normalization and more sophisticated
weights, could significantly improve prediction outcomes."  This module
implements that enhancement:

- each discord's vote is weighted by its *length-normalized* nearest
  neighbor distance relative to the strongest discord, so marginal
  discords no longer count as much as decisive ones;
- the TriAD window's vote carries a configurable weight;
- votes are normalized to [0, 1] before thresholding, making the
  threshold dataset-independent.

The ``bench_fig9_ablation`` harness family can compare this scorer
against the paper's unweighted Eq. 8 (see ``score_votes``).
"""

from __future__ import annotations

import numpy as np

from ..discord.merlin import MerlinResult
from .scoring import VoteResult

__all__ = ["weighted_votes", "score_votes_weighted"]


def weighted_votes(
    test_length: int,
    window: tuple[int, int],
    discords: MerlinResult,
    search_offset: int,
    window_weight: float = 1.0,
) -> np.ndarray:
    """Distance-weighted vote accumulation, normalized to [0, 1]."""
    votes = np.zeros(test_length, dtype=np.float64)
    start, end = window
    votes[start:end] += window_weight

    if discords.discords:
        normalized = np.array(
            [d.distance / np.sqrt(d.length) for d in discords.discords]
        )
        strongest = normalized.max()
        weights = normalized / strongest if strongest > 0 else np.ones_like(normalized)
        for discord, weight in zip(discords.discords, weights):
            lo = max(search_offset + discord.index, 0)
            hi = min(lo + discord.length, test_length)
            if hi > lo:
                votes[lo:hi] += weight

    peak = votes.max()
    if peak > 0:
        votes = votes / peak
    return votes


def score_votes_weighted(
    test_length: int,
    window: tuple[int, int],
    discords: MerlinResult,
    search_offset: int,
    window_weight: float = 1.0,
    threshold: float | None = None,
    exception_fraction: float = 0.05,
) -> VoteResult:
    """Weighted counterpart of :func:`repro.core.scoring.score_votes`.

    ``threshold`` is on the normalized [0, 1] vote scale; ``None`` uses
    the mean of nonzero votes (the paper's rule, on the new scale).
    The Sec. IV-G discord-fail exception is preserved.
    """
    votes = weighted_votes(test_length, window, discords, search_offset, window_weight)
    start, end = window

    discord_only = weighted_votes(test_length, (0, 0), discords, search_offset, 0.0)
    total_mass = float(discord_only.sum())
    inside_mass = float(discord_only[start:end].sum())
    if total_mass > 0 and inside_mass / total_mass < exception_fraction:
        predictions = np.zeros(test_length, dtype=np.int64)
        predictions[start:end] = 1
        return VoteResult(
            votes=votes,
            threshold=float("nan"),
            predictions=predictions,
            exception_applied=True,
        )

    if threshold is None:
        voted = votes[votes > 0]
        threshold = float(voted.mean()) if voted.size else 0.0
    predictions = (votes > threshold).astype(np.int64)
    if not predictions.any():
        predictions = (votes >= votes.max()).astype(np.int64) if votes.max() > 0 else predictions
        if not predictions.any():
            predictions[start:end] = 1
    return VoteResult(
        votes=votes,
        threshold=float(threshold),
        predictions=predictions,
        exception_applied=False,
    )
