"""Save and load fitted TriAD detectors.

A fitted detector is three things: encoder weights, the window plan,
and the configuration (plus the training series, which single-window
selection compares against).  Everything is packed into one ``.npz``.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np

from ..signal.windows import WindowPlan
from .config import TriADConfig
from .detector import TriAD
from .encoder import TriDomainEncoder
from .trainer import TrainResult

__all__ = ["save_detector", "load_detector"]

_META_KEY = "__triad_meta__"
_TRAIN_KEY = "__train_series__"


def save_detector(detector: TriAD, path: str | os.PathLike) -> None:
    """Persist a fitted detector to ``path`` (npz)."""
    result = detector._fitted()
    meta = {
        "config": dataclasses.asdict(detector.config),
        "plan": dataclasses.asdict(result.plan),
        "train_losses": result.train_losses,
        "val_losses": result.val_losses,
    }
    payload = dict(result.encoder.state_dict())
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    payload[_TRAIN_KEY] = detector._train_series
    np.savez_compressed(path, **payload)


def load_detector(path: str | os.PathLike) -> TriAD:
    """Restore a detector saved with :func:`save_detector`.

    The returned detector is ready for :meth:`TriAD.detect` without
    retraining.
    """
    with np.load(path) as archive:
        raw_meta = bytes(archive[_META_KEY].tobytes())
        meta = json.loads(raw_meta.decode("utf-8"))
        train_series = archive[_TRAIN_KEY]
        state = {
            key: archive[key]
            for key in archive.files
            if key not in (_META_KEY, _TRAIN_KEY)
        }

    config_dict = meta["config"]
    config_dict["domains"] = tuple(config_dict["domains"])
    config = TriADConfig(**config_dict)
    encoder = TriDomainEncoder(config)
    encoder.load_state_dict(state)
    encoder.eval()

    detector = TriAD(config)
    detector._train_series = np.asarray(train_series, dtype=np.float64)
    detector._result = TrainResult(
        encoder=encoder,
        plan=WindowPlan(**meta["plan"]),
        config=config,
        train_losses=list(meta["train_losses"]),
        val_losses=list(meta["val_losses"]),
    )
    return detector
