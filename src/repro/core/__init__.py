"""TriAD core: the paper's primary contribution."""

from .config import DOMAINS, TriADConfig
from .detector import TriAD, TriADDetection
from .encoder import DilatedConvEncoder, ResidualBlock, TriDomainEncoder
from .features import domain_channels, extract_all_domains, extract_domain
from .multivariate import MultivariateDetection, MultivariateTriAD
from .losses import inter_domain_loss, intra_domain_loss, total_contrastive_loss
from .persistence import load_detector, save_detector
from .scoring import VoteResult, accumulate_votes, score_votes, threshold_votes
from .trainer import TrainResult, train_encoder
from .weighting import score_votes_weighted, weighted_votes

__all__ = [
    "DOMAINS",
    "TriADConfig",
    "TriAD",
    "TriADDetection",
    "DilatedConvEncoder",
    "ResidualBlock",
    "TriDomainEncoder",
    "domain_channels",
    "extract_all_domains",
    "extract_domain",
    "inter_domain_loss",
    "intra_domain_loss",
    "total_contrastive_loss",
    "VoteResult",
    "accumulate_votes",
    "score_votes",
    "threshold_votes",
    "TrainResult",
    "train_encoder",
    "MultivariateDetection",
    "MultivariateTriAD",
    "load_detector",
    "save_detector",
    "score_votes_weighted",
    "weighted_votes",
]
