"""Replay archive units through the serving stack.

The bridge between the offline world (synthetic UCR-style datasets with
labels) and the online one (the scoring engine): a dataset's test split
is replayed point-by-point as one or many concurrent streams, and the
resulting alerts are checked against the labelled anomaly.  This is the
serving layer's end-to-end harness — the ``repro serve-replay`` CLI is
a thin wrapper around :func:`replay_dataset`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data.spec import Dataset
from ..runtime import RetryPolicy
from .adapt import AdaptiveController
from .drift import DriftMonitor, PeriodChangeMonitor, ScoreShiftMonitor
from .engine import EngineConfig, ScoringEngine, StreamAlert
from .registry import (
    DiscordWindowScorer,
    ModelRegistry,
    SpectralResidualWindowScorer,
    TriADWindowScorer,
    WindowScorer,
)

__all__ = [
    "FailAfter",
    "LevelShift",
    "ReplayReport",
    "build_registry",
    "build_engine",
    "replay_dataset",
]


class FailAfter(WindowScorer):
    """Chaos wrapper: delegates for ``healthy_calls`` batches, then raises.

    Drives the degradation-chain demo (``serve-replay --fail-primary``)
    and failover tests without touching the wrapped scorer.
    """

    def __init__(self, scorer: WindowScorer, healthy_calls: int) -> None:
        self.name = scorer.name
        self.scorer = scorer
        self.healthy_calls = healthy_calls
        self.calls = 0

    def score_windows(self, windows, batch):
        self.calls += 1
        if self.calls > self.healthy_calls:
            raise RuntimeError(
                f"injected failure in {self.name!r} (call {self.calls})"
            )
        return self.scorer.score_windows(windows, batch)

    def calibration_scores(self, length, stride):
        return self.scorer.calibration_scores(length, stride)


@dataclass(frozen=True)
class LevelShift:
    """Chaos injector: a level-shift regime change mid-replay.

    Every replayed point from series index ``at`` onward gets ``delta``
    added — the canonical "the plant re-baselined overnight" drift.  A
    model calibrated on the old level degrades permanently (unlike a
    spike, the shift never reverts), which is exactly the scenario the
    ``serve.adapt`` drill must recover from without an operator.
    """

    at: int
    delta: float

    def apply(self, index: int, value: float) -> float:
        return value + self.delta if index >= self.at else value


def build_registry(
    detector=None,
    policy: RetryPolicy | None = None,
    latency_budget: float | None = None,
    fail_primary_after: int | None = None,
    discord_length: int = 16,
    train_series=None,
    primary: WindowScorer | None = None,
) -> ModelRegistry:
    """The standard degradation chain, optionally headed by a fitted TriAD.

    With ``detector`` the chain is
    ``triad-encoder -> spectral-residual -> streaming-discord``;
    without it the two training-free scorers stand alone.  An explicit
    ``primary`` scorer overrides both (the adaptive level-shift drill
    heads the chain with the level-sensitive
    :class:`~repro.serve.adapt.MomentShiftScorer`).
    ``fail_primary_after`` wraps the primary in :class:`FailAfter` for
    failover drills.  ``train_series`` (normal data) lets the
    training-free scorers pre-compute calibration score distributions so
    engine alert baselines are seeded instead of cold-started.
    """
    registry = ModelRegistry(policy=policy)
    explicit_primary = primary is not None
    if primary is None:
        primary = (
            TriADWindowScorer(detector)
            if detector is not None
            else SpectralResidualWindowScorer(calibration_series=train_series)
        )
    if fail_primary_after is not None:
        primary = FailAfter(primary, fail_primary_after)
    registry.register(primary, latency_budget=latency_budget, max_failures=1)
    if detector is not None or (explicit_primary and primary.name != "spectral-residual"):
        registry.register(SpectralResidualWindowScorer(calibration_series=train_series))
    registry.register(
        DiscordWindowScorer(
            subsequence_length=discord_length, calibration_series=train_series
        )
    )
    return registry


def build_engine(
    registry: ModelRegistry,
    window_length: int,
    stride: int,
    expected_period: int | None = None,
    monitor_drift: bool = True,
    drift: DriftMonitor | None = None,
    **config_overrides,
) -> ScoringEngine:
    """Engine wired with the default drift monitors.

    Pass an explicit ``drift`` monitor to override the defaults — short
    replays need smaller score-shift reference/recent windows than the
    production defaults or drift can never fire before the feed ends.
    """
    if drift is None and monitor_drift:
        drift = DriftMonitor(
            score_monitor=ScoreShiftMonitor(),
            period_monitor=(
                PeriodChangeMonitor(expected_period)
                if expected_period is not None
                else None
            ),
        )
    config = EngineConfig(window_length=window_length, stride=stride, **config_overrides)
    return ScoringEngine(registry, config, drift=drift)


@dataclass
class ReplayReport:
    """What one replay produced, ready to render or serialize."""

    dataset: str
    streams: int
    points: int
    duration_s: float
    alerts: list[StreamAlert] = field(default_factory=list)
    anomaly_interval: tuple[int, int] | None = None
    window_length: int = 0
    engine_report: dict = field(default_factory=dict)
    adaptation: list[dict] = field(default_factory=list)
    chaos: str | None = None

    @property
    def throughput_pps(self) -> float:
        return self.points / self.duration_s if self.duration_s > 0 else 0.0

    def hit_alerts(self) -> list[StreamAlert]:
        """Alerts whose window overlaps the labelled anomaly."""
        if self.anomaly_interval is None:
            return []
        lo, hi = self.anomaly_interval
        return [
            alert
            for alert in self.alerts
            if alert.index > lo and alert.index - self.window_length < hi
        ]

    @property
    def detected(self) -> bool:
        return bool(self.hit_alerts())

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "streams": self.streams,
            "points": self.points,
            "duration_s": self.duration_s,
            "throughput_pps": self.throughput_pps,
            "alerts": [
                {
                    "stream_id": a.stream_id,
                    "index": a.index,
                    "score": a.score,
                    "threshold": a.threshold,
                    "model": a.model,
                }
                for a in self.alerts
            ],
            "anomaly_interval": self.anomaly_interval,
            "detected": self.detected,
            "engine": self.engine_report,
            "adaptation": self.adaptation,
            "chaos": self.chaos,
        }

    def render(self) -> str:
        """Human-readable replay summary for the CLI."""
        lines = [
            f"replayed {self.dataset}: {self.points} points over "
            f"{self.streams} stream(s) in {self.duration_s:.2f}s "
            f"({self.throughput_pps:,.0f} pts/s)",
        ]
        engine = self.engine_report
        latency = engine.get("latency_ms", {})
        lines.append(
            f"windows scored : {engine.get('windows_scored', 0)} in "
            f"{engine.get('batches', 0)} batch(es), shed {engine.get('shed', 0)}"
        )
        if latency:
            lines.append(
                "batch latency  : "
                f"p50 {latency.get('p50', 0.0):.2f}ms  "
                f"p90 {latency.get('p90', 0.0):.2f}ms  "
                f"p99 {latency.get('p99', 0.0):.2f}ms"
            )
        models = ", ".join(engine.get("models_used", [])) or "none"
        lines.append(
            f"models used    : {models} "
            f"(fallback batches: {engine.get('fallback_batches', 0)})"
        )
        for status in engine.get("chain", []):
            state = "TRIPPED" if status["tripped"] else "healthy"
            lines.append(
                f"  chain[{status['position']}] {status['model']}: {state}, "
                f"{status['calls']} call(s)"
                + (f", last error {status['last_error']}" if status["last_error"] else "")
            )
        if self.anomaly_interval is not None:
            lo, hi = self.anomaly_interval
            hits = self.hit_alerts()
            lines.append(
                f"anomaly        : [{lo}, {hi}) — "
                + (
                    f"DETECTED by {len(hits)} alert(s)"
                    if hits
                    else "missed"
                )
            )
        lines.append(f"alerts         : {len(self.alerts)} total")
        for alert in self.alerts[:8]:
            lines.append(
                f"  {alert.stream_id} @ [{alert.index - self.window_length}, "
                f"{alert.index}) score {alert.score:.3f} "
                f"(threshold {alert.threshold:.3f}, {alert.model})"
            )
        if len(self.alerts) > 8:
            lines.append(f"  ... and {len(self.alerts) - 8} more")
        drift = engine.get("drift_signals", [])
        if drift:
            lines.append(f"drift signals  : {len(drift)}")
            for signal in drift[:4]:
                lines.append(
                    f"  {signal['stream_id']}: {signal['kind']} at "
                    f"{signal['at_index']} (value {signal['value']:.2f})"
                )
        if self.chaos:
            lines.append(f"chaos          : {self.chaos}")
        if self.adaptation:
            lines.append(f"adaptation     : {len(self.adaptation)} decision(s)")
            for decision in self.adaptation:
                trigger = decision.get("trigger") or {}
                shadow = decision.get("shadow") or {}
                detail = ""
                if trigger:
                    detail += f" on {trigger.get('kind')}@{trigger.get('at_index')}"
                if decision["action"] == "promoted":
                    detail += f" -> {decision.get('candidate')}"
                if shadow:
                    detail += f" [{shadow.get('mode')} gate]"
                lines.append(
                    f"  {decision['stream_id']} @ {decision['at_index']}: "
                    f"{decision['action'].upper()}{detail} — {decision['reason']}"
                )
        return "\n".join(lines)


def replay_dataset(
    dataset: Dataset,
    engine: ScoringEngine,
    streams: int = 1,
    clock=time.perf_counter,
    controller: AdaptiveController | None = None,
    chaos: LevelShift | None = None,
) -> ReplayReport:
    """Replay ``dataset.test`` through ``engine`` as concurrent streams.

    With ``streams > 1`` the same series is fed round-robin under
    ``streams`` distinct stream ids — points interleave exactly as a
    multi-tenant feed would, so ready windows from different streams
    land in the same micro-batches.

    A ``controller`` routes ingestion through the adaptive retrain loop
    (its label oracle is wired from ``dataset.labels`` unless already
    set, enabling the labeled shadow gate); ``chaos`` mutates the feed
    (e.g. :class:`LevelShift`) to drill that loop.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    series = np.asarray(dataset.test, dtype=np.float64)
    ids = [f"{dataset.name}#{i}" for i in range(streams)]
    if controller is not None and controller.label_oracle is None:
        labels = np.asarray(dataset.labels, dtype=np.int64)

        def oracle(stream_id: str, start: int, end: int):
            # Stream positions equal test-split indices in a replay.
            if start < 0 or end > len(labels):
                return None
            return labels[start:end]

        controller.label_oracle = oracle
    feed = controller.ingest if controller is not None else engine.ingest
    alerts: list[StreamAlert] = []
    start = clock()
    for index, value in enumerate(series):
        if chaos is not None:
            value = chaos.apply(index, float(value))
        for stream_id in ids:
            alerts.extend(feed(stream_id, float(value)))
    alerts.extend(engine.drain())
    duration = clock() - start

    try:
        interval = dataset.anomaly_interval
    except ValueError:
        interval = None
    return ReplayReport(
        dataset=dataset.name,
        streams=streams,
        points=len(series) * streams,
        duration_s=duration,
        alerts=alerts,
        anomaly_interval=interval,
        window_length=engine.config.window_length,
        engine_report=engine.report(),
        adaptation=controller.timeline() if controller is not None else [],
        chaos=(
            f"level-shift delta={chaos.delta:+g} at {chaos.at}"
            if chaos is not None
            else None
        ),
    )
