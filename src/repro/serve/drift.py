"""Online drift monitors emitting retrain signals.

A fitted detector encodes two assumptions about a stream: the score
distribution it produces on normal data, and the periodicity its window
plan was sized for (2.5 x the estimated period, paper Sec. IV-A2).
Either can rot silently in production, so the engine can attach a
:class:`DriftMonitor` that watches both:

- :class:`ScoreShiftMonitor` freezes a per-stream reference of the
  first scores, then compares a sliding recent window against it; a
  recent mean more than ``threshold_sigma`` reference deviations away
  signals ``score_shift``.
- :class:`PeriodChangeMonitor` re-estimates the dominant period from a
  ring of recent raw points every ``check_every`` points (via
  :func:`repro.signal.period.estimate_period`); a relative change
  beyond ``tolerance`` signals ``period_change``.

Signals are advisory — the serving layer keeps scoring (possibly via
the degradation chain) while an operator or retrain pipeline reacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..signal.period import estimate_period
from .stream import RingBuffer

__all__ = ["DriftSignal", "ScoreShiftMonitor", "PeriodChangeMonitor", "DriftMonitor"]


@dataclass(frozen=True)
class DriftSignal:
    """One emitted drift event.

    ``kind`` is ``score_shift`` or ``period_change``; ``value`` is the
    observed statistic (shift in reference sigmas, or the new period)
    and ``reference`` what it was compared against.
    """

    stream_id: str
    kind: str
    at_index: int
    value: float
    reference: float
    threshold: float

    def as_dict(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "kind": self.kind,
            "at_index": self.at_index,
            "value": self.value,
            "reference": self.reference,
            "threshold": self.threshold,
        }


class ScoreShiftMonitor:
    """Per-stream score-distribution shift against a frozen reference.

    ``statistic`` selects how the recent window is summarized:
    ``"mean"`` (default, most sensitive) or ``"median"`` — robust to a
    short transient anomaly spiking a few scores, so only *sustained*
    regime changes signal.  The adaptive controller's drill uses the
    median: a genuine anomaly should alert, not trigger a retrain.
    """

    def __init__(
        self,
        reference_size: int = 128,
        recent_size: int = 64,
        threshold_sigma: float = 3.0,
        cooldown: int = 256,
        statistic: str = "mean",
    ) -> None:
        if reference_size < 2 or recent_size < 2:
            raise ValueError("reference_size and recent_size must be >= 2")
        if statistic not in ("mean", "median"):
            raise ValueError("statistic must be 'mean' or 'median'")
        self.reference_size = reference_size
        self.recent_size = recent_size
        self.threshold_sigma = threshold_sigma
        self.cooldown = cooldown
        self.statistic = statistic
        self._reference: dict[str, list[float]] = {}
        self._frozen: dict[str, tuple[float, float]] = {}  # mean, std
        self._recent: dict[str, RingBuffer] = {}
        self._quiet_until: dict[str, int] = {}
        self._seen: dict[str, int] = {}

    def update(self, stream_id: str, score: float, at_index: int) -> DriftSignal | None:
        seen = self._seen.get(stream_id, 0) + 1
        self._seen[stream_id] = seen
        frozen = self._frozen.get(stream_id)
        if frozen is None:
            bank = self._reference.setdefault(stream_id, [])
            bank.append(float(score))
            if len(bank) >= self.reference_size:
                values = np.asarray(bank)
                self._frozen[stream_id] = (
                    float(values.mean()),
                    float(max(values.std(), 1e-8)),
                )
                del self._reference[stream_id]
            return None
        recent = self._recent.get(stream_id)
        if recent is None:
            recent = self._recent[stream_id] = RingBuffer(self.recent_size)
        recent.append(float(score))
        if len(recent) < self.recent_size:
            return None
        if seen < self._quiet_until.get(stream_id, 0):
            return None
        mean, std = frozen
        if self.statistic == "median":
            recent_stat = float(np.median(recent.view()))
        else:
            recent_stat = recent.mean
        shift = abs(recent_stat - mean) / std
        if shift <= self.threshold_sigma:
            return None
        self._quiet_until[stream_id] = seen + self.cooldown
        return DriftSignal(
            stream_id=stream_id,
            kind="score_shift",
            at_index=at_index,
            value=float(shift),
            reference=mean,
            threshold=self.threshold_sigma,
        )

    def reset(self, stream_id: str) -> None:
        """Forget the stream's reference (call after retraining)."""
        self._frozen.pop(stream_id, None)
        self._reference.pop(stream_id, None)
        self._recent.pop(stream_id, None)
        self._quiet_until.pop(stream_id, None)

    def drop(self, stream_id: str) -> None:
        """Forget the stream entirely (it migrated to another worker)."""
        self.reset(stream_id)
        self._seen.pop(stream_id, None)

    def snapshot_stream(self, stream_id: str) -> dict | None:
        """Exact per-stream state for :mod:`repro.serve.stores`."""
        state: dict = {}
        if stream_id in self._reference:
            state["reference"] = [float(v) for v in self._reference[stream_id]]
        if stream_id in self._frozen:
            state["frozen"] = [float(v) for v in self._frozen[stream_id]]
        if stream_id in self._recent:
            state["recent"] = self._recent[stream_id].snapshot()
        if stream_id in self._quiet_until:
            state["quiet_until"] = self._quiet_until[stream_id]
        if stream_id in self._seen:
            state["seen"] = self._seen[stream_id]
        return state or None

    def restore_stream(self, stream_id: str, state: dict) -> None:
        """Inverse of :meth:`snapshot_stream`: future updates behave as
        if the stream never left this monitor."""
        self.drop(stream_id)
        if "reference" in state:
            self._reference[stream_id] = [float(v) for v in state["reference"]]
        if "frozen" in state:
            mean, std = state["frozen"]
            self._frozen[stream_id] = (float(mean), float(std))
        if "recent" in state:
            self._recent[stream_id] = RingBuffer.from_snapshot(state["recent"])
        if "quiet_until" in state:
            self._quiet_until[stream_id] = int(state["quiet_until"])
        if "seen" in state:
            self._seen[stream_id] = int(state["seen"])

    def reset_all(self) -> None:
        """Forget every stream's reference (after a model change the
        score scale — and thus every frozen reference — is stale)."""
        self._frozen.clear()
        self._reference.clear()
        self._recent.clear()
        self._quiet_until.clear()


class PeriodChangeMonitor:
    """Per-stream dominant-period re-estimation over recent raw points."""

    def __init__(
        self,
        expected_period: int,
        buffer_size: int | None = None,
        check_every: int | None = None,
        tolerance: float = 0.25,
        cooldown_checks: int = 4,
    ) -> None:
        if expected_period < 2:
            raise ValueError("expected_period must be >= 2")
        self.expected_period = expected_period
        self.buffer_size = buffer_size or max(8 * expected_period, 256)
        self.check_every = check_every or max(2 * expected_period, 64)
        self.tolerance = tolerance
        self.cooldown_checks = cooldown_checks
        self._buffers: dict[str, RingBuffer] = {}
        self._quiet: dict[str, int] = {}

    def update(self, stream_id: str, value: float, at_index: int) -> DriftSignal | None:
        buffer = self._buffers.get(stream_id)
        if buffer is None:
            buffer = self._buffers[stream_id] = RingBuffer(self.buffer_size)
        buffer.append(float(value))
        if len(buffer) < self.buffer_size or at_index % self.check_every != 0:
            return None
        quiet = self._quiet.get(stream_id, 0)
        if quiet > 0:
            self._quiet[stream_id] = quiet - 1
            return None
        estimated = estimate_period(
            buffer.view(), default=self.expected_period
        )
        deviation = abs(estimated - self.expected_period) / self.expected_period
        if deviation <= self.tolerance:
            return None
        self._quiet[stream_id] = self.cooldown_checks
        return DriftSignal(
            stream_id=stream_id,
            kind="period_change",
            at_index=at_index,
            value=float(estimated),
            reference=float(self.expected_period),
            threshold=self.tolerance,
        )

    def reset(self, stream_id: str) -> None:
        """Forget the stream's point ring (call after retraining): the
        next check re-estimates from post-retrain data only, instead of
        a stale pre-retrain window immediately re-signalling."""
        self._buffers.pop(stream_id, None)
        self._quiet.pop(stream_id, None)

    def snapshot_stream(self, stream_id: str) -> dict | None:
        """Exact per-stream state for :mod:`repro.serve.stores`."""
        state: dict = {}
        if stream_id in self._buffers:
            state["buffer"] = self._buffers[stream_id].snapshot()
        if stream_id in self._quiet:
            state["quiet"] = self._quiet[stream_id]
        return state or None

    def restore_stream(self, stream_id: str, state: dict) -> None:
        """Inverse of :meth:`snapshot_stream`."""
        self.reset(stream_id)
        if "buffer" in state:
            self._buffers[stream_id] = RingBuffer.from_snapshot(state["buffer"])
        if "quiet" in state:
            self._quiet[stream_id] = int(state["quiet"])


class DriftMonitor:
    """Facade the engine drives: scores and raw points in, signals out.

    ``signals`` accumulates every emitted :class:`DriftSignal`;
    :meth:`retrain_recommended` answers whether a stream has drifted on
    either axis since the last :meth:`acknowledge`.
    """

    def __init__(
        self,
        score_monitor: ScoreShiftMonitor | None = None,
        period_monitor: PeriodChangeMonitor | None = None,
    ) -> None:
        self.score_monitor = score_monitor
        self.period_monitor = period_monitor
        self.signals: list[DriftSignal] = []
        # The live flag set; mutated in place, never rebound, so the
        # adaptive controller can cache a reference for its per-point
        # hot path.  Treat as read-only outside this class.
        self.flagged_streams: set[str] = set()

    def observe_score(self, stream_id: str, score: float, at_index: int) -> None:
        if self.score_monitor is None:
            return
        signal = self.score_monitor.update(stream_id, score, at_index)
        if signal is not None:
            self._emit(signal)

    def observe_point(self, stream_id: str, value: float, at_index: int) -> None:
        if self.period_monitor is None:
            return
        signal = self.period_monitor.update(stream_id, value, at_index)
        if signal is not None:
            self._emit(signal)

    def _emit(self, signal: DriftSignal) -> None:
        self.signals.append(signal)
        self.flagged_streams.add(signal.stream_id)
        obs.incr(f"serve.drift.{signal.kind}")
        obs.event(
            "serve.drift",
            stream=signal.stream_id,
            kind=signal.kind,
            value=signal.value,
        )

    def model_changed(self) -> None:
        """Invalidate score references after a hot-swap or failover."""
        if self.score_monitor is not None:
            self.score_monitor.reset_all()

    def retrain_recommended(self, stream_id: str) -> bool:
        return stream_id in self.flagged_streams

    @property
    def flagged(self) -> set[str]:
        """Streams currently recommended for retraining (a copy)."""
        return set(self.flagged_streams)

    def last_signal(self, stream_id: str) -> DriftSignal | None:
        """The most recent signal this stream emitted, if any."""
        for signal in reversed(self.signals):
            if signal.stream_id == stream_id:
                return signal
        return None

    def snapshot_stream(self, stream_id: str) -> dict | None:
        """Exact per-stream drift state (both monitors + retrain flag)
        for externalization through :mod:`repro.serve.stores`."""
        state: dict = {}
        if self.score_monitor is not None:
            score = self.score_monitor.snapshot_stream(stream_id)
            if score is not None:
                state["score"] = score
        if self.period_monitor is not None:
            period = self.period_monitor.snapshot_stream(stream_id)
            if period is not None:
                state["period"] = period
        if stream_id in self.flagged_streams:
            state["flagged"] = True
        return state or None

    def restore_stream(self, stream_id: str, state: dict) -> None:
        """Inverse of :meth:`snapshot_stream`: the stream continues on
        this monitor exactly as it would have on its previous one."""
        self.drop_stream(stream_id)
        if self.score_monitor is not None and "score" in state:
            self.score_monitor.restore_stream(stream_id, state["score"])
        if self.period_monitor is not None and "period" in state:
            self.period_monitor.restore_stream(stream_id, state["period"])
        if state.get("flagged"):
            self.flagged_streams.add(stream_id)

    def drop_stream(self, stream_id: str) -> None:
        """Forget a stream entirely (it migrated to another worker).
        Past emitted ``signals`` are history and are kept."""
        self.flagged_streams.discard(stream_id)
        if self.score_monitor is not None:
            self.score_monitor.drop(stream_id)
        if self.period_monitor is not None:
            self.period_monitor.reset(stream_id)

    def acknowledge(self, stream_id: str) -> None:
        """Clear the retrain flag (the operator or the adaptive
        controller acted on it) *and* reset both underlying monitors'
        per-stream references — a stale reference window would otherwise
        immediately re-trigger and start a retrain storm."""
        self.flagged_streams.discard(stream_id)
        if self.score_monitor is not None:
            self.score_monitor.reset(stream_id)
        if self.period_monitor is not None:
            self.period_monitor.reset(stream_id)
