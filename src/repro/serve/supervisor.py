"""Worker-fleet supervision for the shard fabric.

:class:`~repro.serve.shard.ShardRouter` owns the mechanics — spawn,
consistent-hash routing, persist-then-ack, heal — while
:class:`ShardSupervisor` owns the *policy*: detect dead workers between
rounds (not just when a submit trips over one), respawn and rehydrate
them, scale the fleet up or down with minimal migration, and run the
``kill -9`` chaos drill that the recovery guarantees are gated on.

The split mirrors ``jobs``' executor/manager pairing: the router is a
correct but passive fabric, the supervisor is the loop an operator (or
the CLI) actually drives.
"""

from __future__ import annotations

import os
import signal
import time

from .. import obs
from .shard import ShardRouter, WorkerSpec
from .stores import StoreProvider

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Drives a :class:`ShardRouter`: health checks, scaling, chaos.

    Usage::

        with ShardSupervisor(spec, workers=4, store=store) as sup:
            for round_items in feed:
                alerts = sup.submit(round_items)
        # chaos drill:
        sup.kill_worker(sup.router.workers[0])   # SIGKILL, no warning
        sup.check()                              # detect + heal

    ``submit`` delegates to the router (whose ``auto_heal`` already
    covers mid-round deaths); :meth:`check` covers deaths that happen
    *between* rounds — a worker that died idle is respawned and
    rehydrated before it is ever asked to score again.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        workers: int = 4,
        store: StoreProvider | None = None,
        vnodes: int = 64,
        router: ShardRouter | None = None,
    ) -> None:
        self.router = router if router is not None else ShardRouter(
            spec, workers=workers, store=store, vnodes=vnodes
        )
        self.heals = 0

    # -- serving ---------------------------------------------------------
    def submit(self, items):
        """One scoring round through a health-checked fleet."""
        self.check()
        return self.router.submit(items)

    def check(self) -> list[str]:
        """Detect dead workers and heal them; returns the healed names."""
        healed = []
        for name in self.router.workers:
            handle = self.router._workers[name]
            if not handle.alive():
                self.router._mark_dead(name)
                self.router.heal_worker(name)
                self.heals += 1
                healed.append(name)
        return healed

    # -- scaling ---------------------------------------------------------
    def scale_to(self, target: int) -> dict:
        """Grow or shrink the fleet; returns the migration summary.

        Consistent hashing keeps each join/leave to ~1/N of the
        streams; the summary reports exactly which moved.
        """
        if target < 1:
            raise ValueError("target must be >= 1")
        moved: dict[str, list[str]] = {}
        current = self.router.workers
        index = 0
        while len(self.router.workers) < target:
            while f"w{index}" in self.router._workers:
                index += 1
            name = f"w{index}"
            moved[f"+{name}"] = self.router.add_worker(name)
        while len(self.router.workers) > target:
            name = self.router.workers[-1]
            moved[f"-{name}"] = self.router.remove_worker(name)
        if moved:
            obs.event(
                "serve.shard.scaled",
                workers=len(self.router.workers),
                moved=sum(len(ids) for ids in moved.values()),
            )
        return {"workers": self.router.workers, "moved": moved, "was": current}

    # -- chaos -----------------------------------------------------------
    def kill_worker(self, name: str, wait: bool = True) -> int:
        """``kill -9`` a worker (the chaos drill). Returns its old pid.

        The next :meth:`check` or :meth:`submit` heals it: drain the
        pipe, respawn, rehydrate from the store, replay unacked batches.
        """
        pid = self.router.worker_pid(name)
        os.kill(pid, signal.SIGKILL)
        if wait:
            deadline = time.monotonic() + 5.0
            process = self.router._workers[name].process
            while process.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
        obs.event("serve.shard.chaos_kill", worker=name, pid=pid)
        return pid

    # -- lifecycle -------------------------------------------------------
    def report(self) -> dict:
        report = self.router.report()
        report["heals"] = self.heals
        return report

    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
