"""Pluggable stream-state stores for sharded serving.

A single-process :class:`~repro.serve.engine.ScoringEngine` keeps every
stream's state — sliding-window ring, alert baseline, drift references
— in local dicts, which caps serving at one core and one address
space.  The shard fabric (:mod:`repro.serve.shard`) externalizes that
state behind the :class:`StoreProvider` abstraction defined here, so
workers are stateless and restartable: a stream's full state is a
:class:`StreamSnapshot`, exact by construction (see
:meth:`repro.serve.stream.RingBuffer.snapshot`), and any worker that
loads the snapshot continues the stream with bit-identical windows and
alert decisions.

Backends:

- :class:`InMemoryStore` — a dict; fastest, dies with the process.
  The default for tests and for routers that only need migration, not
  durability.
- :class:`FileBackedStore` — one ``.npz`` per stream written
  atomically (tmp + fsync + rename) plus an fsync'd JSONL index
  journal, the same torn-line skip-and-warn discipline as
  :class:`repro.jobs.store.JobStore`.  Survives a supervisor restart.
- :class:`SharedMemoryStore` — ``multiprocessing.shared_memory``
  segments named under a namespace, with the stream index itself kept
  in a shared segment, so a *different process* (or a restarted
  supervisor) can attach by namespace and pick the fleet's state up
  without touching disk.

Snapshots are serialized without pickle: arrays go into an ``.npz``
container and scalars into a JSON tree (:func:`payload_to_bytes` /
:func:`payload_from_bytes`), shared verbatim by the file and
shared-memory backends.  ``json`` round-trips Python floats exactly
(shortest repr), so a restored running sum is the bit pattern the
snapshot captured.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "StreamSnapshot",
    "StoreProvider",
    "InMemoryStore",
    "FileBackedStore",
    "SharedMemoryStore",
    "payload_to_bytes",
    "payload_from_bytes",
]


# ----------------------------------------------------------------------
# The unit of externalized state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamSnapshot:
    """Everything one stream needs to continue on another worker.

    ``stream`` is the :meth:`~repro.serve.stream.StreamState.snapshot`
    dict (window cadence + ring buffer), ``baseline`` the alert
    baseline ring's snapshot (``None`` before the first scored window),
    and ``drift`` the per-stream drift-monitor references (``None``
    when the engine runs without a monitor).  All three are trees of
    JSON scalars and numpy arrays — nothing else — so every backend
    can serialize them without pickle.
    """

    stream_id: str
    stream: dict
    baseline: dict | None = None
    drift: dict | None = None

    def to_payload(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "stream": self.stream,
            "baseline": self.baseline,
            "drift": self.drift,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "StreamSnapshot":
        return cls(
            stream_id=str(payload["stream_id"]),
            stream=payload["stream"],
            baseline=payload.get("baseline"),
            drift=payload.get("drift"),
        )


# ----------------------------------------------------------------------
# Pickle-free payload codec (shared by the file and shm backends)
# ----------------------------------------------------------------------
def payload_to_bytes(payload: dict) -> bytes:
    """Serialize a tree of JSON scalars and numpy arrays to bytes.

    Arrays are pulled out into ``.npz`` members (``arr<N>``) and
    replaced in the JSON tree by ``{"__array__": N}`` markers; the tree
    itself rides along as a ``uint8`` member.  No pickle anywhere, so a
    corrupted or adversarial blob can fail to parse but never execute.
    """
    arrays: list[np.ndarray] = []

    def strip(node):
        if isinstance(node, np.ndarray):
            arrays.append(np.ascontiguousarray(node))
            return {"__array__": len(arrays) - 1}
        if isinstance(node, dict):
            return {str(key): strip(value) for key, value in node.items()}
        if isinstance(node, (list, tuple)):
            return [strip(value) for value in node]
        if isinstance(node, (np.integer,)):
            return int(node)
        if isinstance(node, (np.floating,)):
            return float(node)
        return node  # str / int / float / bool / None

    tree = strip(payload)
    encoded = json.dumps(tree, sort_keys=True).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(
        buffer,
        __tree__=np.frombuffer(encoded, dtype=np.uint8),
        **{f"arr{i}": array for i, array in enumerate(arrays)},
    )
    return buffer.getvalue()


def payload_from_bytes(data: bytes) -> dict:
    """Inverse of :func:`payload_to_bytes`."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        tree = json.loads(bytes(archive["__tree__"]).decode("utf-8"))

        def build(node):
            if isinstance(node, dict):
                if set(node) == {"__array__"}:
                    return archive[f"arr{node['__array__']}"].copy()
                return {key: build(value) for key, value in node.items()}
            if isinstance(node, list):
                return [build(value) for value in node]
            return node

        return build(tree)


def _digest(stream_id: str) -> str:
    """Filesystem/shm-safe stable name for an arbitrary stream id."""
    return hashlib.blake2b(stream_id.encode("utf-8"), digest_size=12).hexdigest()


# ----------------------------------------------------------------------
# The provider contract
# ----------------------------------------------------------------------
class StoreProvider:
    """Swappable per-stream state store.

    One writer at a time per stream is the concurrency contract: the
    shard router persists a stream's snapshot only from the worker that
    owns its hash slot, and migration hands ownership over *through*
    the store, so backends need atomicity per save but no cross-writer
    locking.
    """

    def save(self, snapshot: StreamSnapshot) -> None:
        raise NotImplementedError

    def load(self, stream_id: str) -> StreamSnapshot | None:
        raise NotImplementedError

    def delete(self, stream_id: str) -> None:
        raise NotImplementedError

    def stream_ids(self) -> list[str]:
        raise NotImplementedError

    def save_many(self, snapshots) -> None:
        for snapshot in snapshots:
            self.save(snapshot)

    def close(self) -> None:
        """Release backend resources (a no-op for most backends)."""

    def __enter__(self) -> "StoreProvider":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InMemoryStore(StoreProvider):
    """Snapshots in a local dict — fast, process-lifetime durability.

    Enough for worker migration and respawn while the router process
    itself survives (the state lives with the router, not the worker).
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, StreamSnapshot] = {}

    def save(self, snapshot: StreamSnapshot) -> None:
        self._snapshots[snapshot.stream_id] = snapshot

    def load(self, stream_id: str) -> StreamSnapshot | None:
        return self._snapshots.get(stream_id)

    def delete(self, stream_id: str) -> None:
        self._snapshots.pop(stream_id, None)

    def stream_ids(self) -> list[str]:
        return sorted(self._snapshots)


class FileBackedStore(StoreProvider):
    """One atomically-written ``.npz`` per stream plus an index journal.

    ``<dir>/<digest>.npz`` holds the snapshot bytes (tmp file, fsync,
    ``os.replace`` — a crash leaves the previous snapshot intact, never
    a torn one).  ``<dir>/streams.jsonl`` journals ``{stream_id,
    digest}`` lines (and ``deleted`` tombstones) fsync'd in the
    :class:`repro.jobs.store.JobStore` discipline, so ``stream_ids``
    replays the journal instead of parsing every blob, and torn
    trailing lines are skipped with a warning.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._index_path = self.directory / "streams.jsonl"
        self._index: dict[str, str] = {}  # stream_id -> digest
        self._replay_index()

    def _replay_index(self) -> None:
        if not self._index_path.exists():
            return
        with open(self._index_path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as error:
                    warnings.warn(
                        f"{self._index_path}:{lineno}: skipping unparseable "
                        f"index line (torn write?): {error}",
                        stacklevel=2,
                    )
                    continue
                if not isinstance(entry, dict) or "stream_id" not in entry:
                    warnings.warn(
                        f"{self._index_path}:{lineno}: skipping malformed "
                        f"index line",
                        stacklevel=2,
                    )
                    continue
                if entry.get("deleted"):
                    self._index.pop(entry["stream_id"], None)
                else:
                    self._index[entry["stream_id"]] = entry.get(
                        "digest", _digest(entry["stream_id"])
                    )

    def _journal(self, payload: dict) -> None:
        with open(self._index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _blob_path(self, stream_id: str) -> Path:
        return self.directory / f"{_digest(stream_id)}.npz"

    def save(self, snapshot: StreamSnapshot) -> None:
        data = payload_to_bytes(snapshot.to_payload())
        path = self._blob_path(snapshot.stream_id)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        if snapshot.stream_id not in self._index:
            self._index[snapshot.stream_id] = _digest(snapshot.stream_id)
            self._journal(
                {"stream_id": snapshot.stream_id, "digest": self._index[snapshot.stream_id]}
            )

    def load(self, stream_id: str) -> StreamSnapshot | None:
        path = self._blob_path(stream_id)
        if not path.exists():
            return None
        try:
            payload = payload_from_bytes(path.read_bytes())
        except Exception as error:  # noqa: BLE001 - corrupt blob == missing
            warnings.warn(
                f"{path}: unreadable snapshot ({error!r}); treating as missing",
                stacklevel=2,
            )
            return None
        return StreamSnapshot.from_payload(payload)

    def delete(self, stream_id: str) -> None:
        path = self._blob_path(stream_id)
        if path.exists():
            path.unlink()
        if stream_id in self._index:
            del self._index[stream_id]
            self._journal({"stream_id": stream_id, "deleted": True})

    def stream_ids(self) -> list[str]:
        return sorted(self._index)


class SharedMemoryStore(StoreProvider):
    """Snapshots in named ``multiprocessing.shared_memory`` segments.

    Each stream gets its own segment (``<namespace>-s<N>``) holding a
    little-endian ``uint64`` length header followed by the payload
    bytes; segments are over-allocated by 25% so steady-state saves
    rewrite in place instead of reallocating.  The stream index itself
    lives in ``<namespace>-index``, so a second
    ``SharedMemoryStore(namespace=...)`` — in this process or another —
    attaches to the same fleet state.

    Single-writer per the :class:`StoreProvider` contract; the index
    segment additionally assumes a single *managing* store at a time
    (the shard router), with read-only attachers tolerated.
    """

    _HEADER = struct.Struct("<Q")
    _SLACK = 1.25

    def __init__(self, namespace: str | None = None) -> None:
        self.namespace = namespace or f"repro-{os.urandom(6).hex()}"
        self._segments: dict[str, str] = {}  # stream_id -> segment name
        self._blocks: dict[str, "object"] = {}  # segment name -> SharedMemory
        self._sequence = 0
        self._index_block = None
        self._attach_index()

    # -- segment plumbing ------------------------------------------------
    def _shm(self):
        from multiprocessing import shared_memory

        return shared_memory

    def _attach_index(self) -> None:
        shm = self._shm()
        try:
            block = shm.SharedMemory(name=f"{self.namespace}-index")
        except FileNotFoundError:
            return
        try:
            index = self._read_block(block)
        finally:
            block.close()
        if index is None:
            return
        self._segments = dict(index.get("segments", {}))
        self._sequence = int(index.get("sequence", len(self._segments)))

    def _read_block(self, block) -> dict | None:
        (length,) = self._HEADER.unpack_from(block.buf, 0)
        if length == 0 or length > len(block.buf) - self._HEADER.size:
            return None
        raw = bytes(block.buf[self._HEADER.size : self._HEADER.size + length])
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            warnings.warn(
                f"shared-memory block {block.name}: unreadable index "
                f"({error!r}); starting empty",
                stacklevel=2,
            )
            return None

    def _write_bytes(self, name_hint: str, data: bytes, existing: str | None):
        """Write ``data`` into ``existing`` if it fits, else a new segment.

        Returns the segment name the bytes landed in.
        """
        shm = self._shm()
        needed = self._HEADER.size + len(data)
        block = self._blocks.get(existing) if existing else None
        if block is not None and len(block.buf) < needed:
            block.close()
            block.unlink()
            self._blocks.pop(existing, None)
            block = None
        if block is None:
            self._sequence += 1
            name = f"{self.namespace}-{name_hint}{self._sequence}"
            block = shm.SharedMemory(
                name=name, create=True, size=max(int(needed * self._SLACK), 64)
            )
            self._blocks[name] = block
        self._HEADER.pack_into(block.buf, 0, len(data))
        block.buf[self._HEADER.size : self._HEADER.size + len(data)] = data
        return block.name

    def _publish_index(self) -> None:
        data = json.dumps(
            {"segments": self._segments, "sequence": self._sequence},
            sort_keys=True,
        ).encode("utf-8")
        shm = self._shm()
        needed = self._HEADER.size + len(data)
        block = self._index_block
        if block is None:
            try:
                block = shm.SharedMemory(name=f"{self.namespace}-index")
            except FileNotFoundError:
                block = None
        if block is not None and len(block.buf) < needed:
            block.close()
            block.unlink()
            block = None
        if block is None:
            block = shm.SharedMemory(
                name=f"{self.namespace}-index",
                create=True,
                size=max(int(needed * self._SLACK), 256),
            )
        self._HEADER.pack_into(block.buf, 0, len(data))
        block.buf[self._HEADER.size : self._HEADER.size + len(data)] = data
        self._index_block = block

    def _attach_segment(self, name: str):
        block = self._blocks.get(name)
        if block is None:
            block = self._shm().SharedMemory(name=name)
            self._blocks[name] = block
        return block

    # -- provider API ----------------------------------------------------
    def save(self, snapshot: StreamSnapshot) -> None:
        data = payload_to_bytes(snapshot.to_payload())
        name = self._write_bytes(
            f"s{_digest(snapshot.stream_id)[:8]}-",
            data,
            self._segments.get(snapshot.stream_id),
        )
        if self._segments.get(snapshot.stream_id) != name:
            self._segments[snapshot.stream_id] = name
            self._publish_index()

    def load(self, stream_id: str) -> StreamSnapshot | None:
        name = self._segments.get(stream_id)
        if name is None:
            return None
        try:
            block = self._attach_segment(name)
        except FileNotFoundError:
            return None
        (length,) = self._HEADER.unpack_from(block.buf, 0)
        if length == 0 or length > len(block.buf) - self._HEADER.size:
            return None
        raw = bytes(block.buf[self._HEADER.size : self._HEADER.size + length])
        try:
            return StreamSnapshot.from_payload(payload_from_bytes(raw))
        except Exception as error:  # noqa: BLE001 - corrupt blob == missing
            warnings.warn(
                f"shared-memory segment {name}: unreadable snapshot "
                f"({error!r}); treating as missing",
                stacklevel=2,
            )
            return None

    def delete(self, stream_id: str) -> None:
        name = self._segments.pop(stream_id, None)
        if name is None:
            return
        block = self._blocks.pop(name, None)
        if block is None:
            try:
                block = self._shm().SharedMemory(name=name)
            except FileNotFoundError:
                block = None
        if block is not None:
            block.close()
            block.unlink()
        self._publish_index()

    def stream_ids(self) -> list[str]:
        return sorted(self._segments)

    def close(self, unlink: bool = True) -> None:
        """Detach (and by default unlink) every segment this store owns."""
        for block in self._blocks.values():
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:
                    pass
        self._blocks.clear()
        if self._index_block is not None:
            self._index_block.close()
            if unlink:
                try:
                    self._index_block.unlink()
                except FileNotFoundError:
                    pass
            self._index_block = None
        if unlink:
            self._segments.clear()
