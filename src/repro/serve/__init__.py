"""Online serving: multi-stream scoring on top of fitted detectors.

The production-facing layer of the reproduction (ROADMAP north star):
per-stream sliding-window state (:mod:`repro.serve.stream`), a
versioned model registry with hot-swap and a graceful-degradation chain
(:mod:`repro.serve.registry`), a micro-batching scoring engine with
admission control (:mod:`repro.serve.engine`), online drift monitors
(:mod:`repro.serve.drift`), a self-healing adaptive controller closing
the drift -> retrain -> promote loop (:mod:`repro.serve.adapt`, see
``docs/ADAPTIVE.md``), a labelled-replay harness with chaos
injectors (:mod:`repro.serve.replay`, surfaced as ``repro
serve-replay``), and a sharded multi-worker fabric with pluggable
stream-state stores (:mod:`repro.serve.stores`,
:mod:`repro.serve.shard`, :mod:`repro.serve.supervisor`, surfaced as
``repro serve-shard`` — see ``docs/SHARDING.md``).

Quick start::

    from repro.serve import build_registry, build_engine, replay_dataset

    registry = build_registry(fitted_triad)        # triad -> SR -> discord
    engine = build_engine(registry,
                          window_length=fitted_triad.plan.length,
                          stride=fitted_triad.plan.stride,
                          expected_period=fitted_triad.plan.period)
    for alert in engine.ingest("sensor-7", value):
        page_someone(alert)

See ``docs/SERVING.md`` for the architecture and semantics.
"""

from .adapt import (
    AdaptConfig,
    AdaptationDecision,
    AdaptationJournal,
    AdaptiveController,
    MomentShiftScorer,
    ShadowReport,
    moment_trainer,
    nan_poisoned,
    shadow_evaluate,
    triad_trainer,
)
from .drift import DriftMonitor, DriftSignal, PeriodChangeMonitor, ScoreShiftMonitor
from .engine import EngineConfig, ScoringEngine, StreamAlert
from .registry import (
    DegradationExhaustedError,
    DiscordWindowScorer,
    ModelEntry,
    ModelRegistry,
    SpectralResidualWindowScorer,
    TriADWindowScorer,
    WindowScorer,
)
from .replay import (
    FailAfter,
    LevelShift,
    ReplayReport,
    build_engine,
    build_registry,
    replay_dataset,
)
from .shard import (
    HashRing,
    RecordingEngine,
    ShardRouter,
    WorkerDiedError,
    WorkerSpec,
    build_worker_engine,
    subprocess_trainer,
)
from .stores import (
    FileBackedStore,
    InMemoryStore,
    SharedMemoryStore,
    StoreProvider,
    StreamSnapshot,
)
from .stream import ReadyWindow, RingBuffer, StreamState
from .supervisor import ShardSupervisor

__all__ = [
    "HashRing",
    "RecordingEngine",
    "ShardRouter",
    "ShardSupervisor",
    "WorkerDiedError",
    "WorkerSpec",
    "build_worker_engine",
    "subprocess_trainer",
    "StoreProvider",
    "StreamSnapshot",
    "InMemoryStore",
    "FileBackedStore",
    "SharedMemoryStore",
    "AdaptConfig",
    "AdaptationDecision",
    "AdaptationJournal",
    "AdaptiveController",
    "MomentShiftScorer",
    "ShadowReport",
    "moment_trainer",
    "nan_poisoned",
    "shadow_evaluate",
    "triad_trainer",
    "LevelShift",
    "RingBuffer",
    "ReadyWindow",
    "StreamState",
    "WindowScorer",
    "TriADWindowScorer",
    "SpectralResidualWindowScorer",
    "DiscordWindowScorer",
    "ModelEntry",
    "ModelRegistry",
    "DegradationExhaustedError",
    "EngineConfig",
    "ScoringEngine",
    "StreamAlert",
    "DriftSignal",
    "ScoreShiftMonitor",
    "PeriodChangeMonitor",
    "DriftMonitor",
    "FailAfter",
    "ReplayReport",
    "build_registry",
    "build_engine",
    "replay_dataset",
]
