"""Self-healing adaptive serving: the drift -> retrain -> promote loop.

The serving stack already had every piece of an adaptive system —
:class:`~repro.serve.drift.DriftMonitor` emits retrain signals, the
:class:`~repro.serve.registry.ModelRegistry` hot-swaps versions, and
``repro.runtime`` guards risky work — but nothing connected them: a
drifted stream degraded forever until an operator intervened.  The
:class:`AdaptiveController` closes the loop:

1. **Watch** — it wraps :meth:`ScoringEngine.ingest`, keeping a bounded
   per-stream history of recent raw points, and polls the engine's
   drift monitor for ``retrain_recommended`` streams.
2. **Retrain** — on a signal (after a per-stream settle/cooldown so the
   history window has filled with the *new* regime) it fits a candidate
   scorer on recent history under ``runtime`` guardrails: a
   :class:`~repro.runtime.RunBudget` wall-clock cap, a
   :class:`~repro.runtime.RetryPolicy` with deterministic reseeding,
   and :class:`~repro.runtime.DivergenceGuard` semantics for candidates
   that emit non-finite scores.  A failed retrain never takes down
   serving — the incumbent keeps scoring throughout.
3. **Shadow-evaluate** — candidate and incumbent both score a held-out
   slice of recent history through the pipeline adapters
   (:func:`repro.pipeline.from_window_scorer`).  With labels (the
   replay harness supplies an oracle) the paper metric suite decides:
   PA%K F1-AUC and affiliation F1 must not regress beyond
   ``metric_margin``.  Without labels — live production — the gate is
   label-free: the candidate's false-alarm rate on recent (presumed
   normal) data must be below ``max_alert_rate`` and not above the
   incumbent's.
4. **Promote** — only a passing candidate is registered and promoted
   via :meth:`ModelRegistry.promote`; the controller then re-arms every
   tripped circuit breaker, resets the stream's drift references
   (:meth:`DriftMonitor.acknowledge`), and clears alert baselines so
   the engine re-calibrates on the new model's scale.
5. **Audit + rollback** — every decision (trigger, shadow scores,
   verdict) is journaled as one JSONL line.  A promoted model is on
   probation: if its alert rate goes pathological within
   ``probation_points``, the controller rolls back to the previous
   version and backs off.

See ``docs/ADAPTIVE.md`` for the lifecycle and the audit-trail format.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..metrics import affiliation_metrics, pa_k_auc
from ..pipeline import calibrate_threshold, default_pipeline, from_window_scorer
from ..runtime import BudgetExceededError, DivergenceGuard, RetryPolicy, RunBudget
from .drift import DriftSignal
from .engine import ScoringEngine, StreamAlert
from .registry import WindowScorer
from .stream import RingBuffer

__all__ = [
    "AdaptConfig",
    "AdaptationDecision",
    "AdaptationJournal",
    "AdaptiveController",
    "MomentShiftScorer",
    "ShadowReport",
    "moment_trainer",
    "nan_poisoned",
    "shadow_evaluate",
    "triad_trainer",
]

# A trainer factory fits a candidate scorer on recent history under a
# deterministic seed: (history, seed) -> WindowScorer.
TrainerFactory = Callable[[np.ndarray, int], WindowScorer]


# ----------------------------------------------------------------------
# A cheap, level-sensitive scorer (retrainable in microseconds)
# ----------------------------------------------------------------------
class MomentShiftScorer(WindowScorer):
    """Scores windows by moment distance to a calibration series.

    ``|window.mean - ref.mean| / ref.std + |window.std - ref.std| /
    ref.std`` — deliberately *not* shift-invariant, unlike the z-normed
    spectral/discord scorers, so a level-shift regime change degrades it
    exactly the way drift degrades a model fitted to a stale regime.
    It doubles as the cheapest retrain target: :func:`moment_trainer`
    rebuilds one from recent history in O(n).
    """

    name = "moment-shift"

    def __init__(self, calibration_series: np.ndarray, sigma_floor: float = 1e-3) -> None:
        series = np.asarray(calibration_series, dtype=np.float64)
        if series.size < 2:
            raise ValueError("calibration_series must hold at least 2 points")
        self._series = series
        self._mean = float(series.mean())
        self._std = float(max(series.std(), sigma_floor))
        self._calibration: dict[tuple[int, int], np.ndarray] = {}

    def score_windows(self, windows: np.ndarray, batch) -> np.ndarray:
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        means = windows.mean(axis=1)
        stds = windows.std(axis=1)
        return np.abs(means - self._mean) / self._std + np.abs(stds - self._std) / self._std

    def calibration_scores(self, length: int, stride: int) -> np.ndarray | None:
        if len(self._series) < length:
            return None
        key = (length, stride)
        if key not in self._calibration:
            windows, _ = default_pipeline().windows(self._series, length, stride)
            self._calibration[key] = self.score_windows(windows, ())
        return self._calibration[key]


# ----------------------------------------------------------------------
# Trainer factories
# ----------------------------------------------------------------------
def moment_trainer() -> TrainerFactory:
    """Factory fitting a :class:`MomentShiftScorer` on recent history."""

    def factory(history: np.ndarray, seed: int) -> WindowScorer:
        del seed  # deterministic; the signature is uniform across factories
        return MomentShiftScorer(history)

    return factory


def triad_trainer(config=None, window_length: int | None = None) -> TrainerFactory:
    """Factory refitting a TriAD encoder on recent history.

    ``window_length`` pins the candidate's window plan to the serving
    engine's window length (``min_window = max_window = length``) so the
    candidate scores the same windows the incumbent does; without it the
    refit would re-derive a plan from the history's estimated period and
    could emit a scorer the engine cannot batch.
    """

    def factory(history: np.ndarray, seed: int) -> WindowScorer:
        from dataclasses import replace

        from ..core.config import TriADConfig
        from ..core.detector import TriAD
        from ..pipeline.adapters import TriADWindowScorer

        base = config if config is not None else TriADConfig(
            depth=2, hidden_dim=8, epochs=2
        )
        overrides: dict = {"seed": seed}
        if window_length is not None:
            overrides["min_window"] = int(window_length)
            overrides["max_window"] = int(window_length)
        detector = TriAD(replace(base, **overrides)).fit(history)
        return TriADWindowScorer(detector)

    return factory


def nan_poisoned(factory: TrainerFactory) -> TrainerFactory:
    """Chaos wrapper: the candidate's scores are poisoned with NaN.

    Drives the diverging-retrain drill (``serve-replay --chaos
    nan-retrain``): the guardrails must reject the candidate and leave
    the incumbent serving.
    """

    def poisoned(history: np.ndarray, seed: int) -> WindowScorer:
        candidate = factory(history, seed)

        class _Poisoned(WindowScorer):
            name = candidate.name

            def score_windows(self, windows, batch):
                scores = np.asarray(
                    candidate.score_windows(windows, batch), dtype=np.float64
                )
                scores[...] = np.nan
                return scores

            def calibration_scores(self, length, stride):
                return candidate.calibration_scores(length, stride)

        return _Poisoned()

    return poisoned


# ----------------------------------------------------------------------
# Shadow evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShadowReport:
    """Candidate-vs-incumbent verdict on a held-out replay slice.

    ``mode`` is ``"labeled"`` (paper metric suite: PA%K F1-AUC +
    affiliation F1) when the holdout slice carries labeled events, else
    ``"label-free"`` (false-alarm rate on presumed-normal data).
    """

    mode: str
    promote: bool
    reason: str
    incumbent: dict = field(default_factory=dict)
    candidate: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "promote": self.promote,
            "reason": self.reason,
            "incumbent": dict(self.incumbent),
            "candidate": dict(self.candidate),
        }


def _scorer_threshold(
    scorer: WindowScorer, scores: np.ndarray, length: int, stride: int, sigma: float
) -> float:
    """Alert threshold from the scorer's own normal-data calibration,
    falling back to the holdout scores themselves when uncalibrated."""
    calibration = scorer.calibration_scores(length, stride)
    bank = calibration if calibration is not None and len(calibration) >= 2 else scores
    return calibrate_threshold(np.asarray(bank, dtype=np.float64), sigma)


def shadow_evaluate(
    incumbent: WindowScorer,
    candidate: WindowScorer,
    holdout: np.ndarray,
    window_length: int,
    stride: int,
    labels: np.ndarray | None = None,
    metric_margin: float = 0.05,
    max_alert_rate: float = 0.2,
    alert_sigma: float = 3.0,
) -> ShadowReport:
    """Score both models on ``holdout`` through the pipeline adapters.

    Labeled mode thresholds each scorer at its own calibration and
    requires the candidate's PA%K F1-AUC *and* affiliation F1 to stay
    within ``metric_margin`` of the incumbent's — but only when the
    incumbent is itself healthy on the holdout (false-alarm rate on
    normal-labelled points at most ``max_alert_rate``); an incumbent in
    a false-alarm storm is judged by the label-free gate instead.
    Label-free mode
    requires the candidate's alert rate on the (presumed normal)
    holdout to be below ``max_alert_rate`` and not above the
    incumbent's — a model fitted to the current regime should find
    recent data unremarkable.
    """
    holdout = np.asarray(holdout, dtype=np.float64)
    length = min(int(window_length), len(holdout))
    inc_scores = from_window_scorer(incumbent, length, stride).score_series(holdout)
    cand_scores = from_window_scorer(candidate, length, stride).score_series(holdout)

    if not np.all(np.isfinite(cand_scores)):
        return ShadowReport(
            mode="guard",
            promote=False,
            reason="candidate produced non-finite shadow scores (divergence)",
        )

    inc_threshold = _scorer_threshold(incumbent, inc_scores, length, stride, alert_sigma)
    cand_threshold = _scorer_threshold(candidate, cand_scores, length, stride, alert_sigma)

    # With labels, every rate below is a *false-alarm* rate over the
    # normal-labelled points — alerting on the labelled event is the
    # job, not noise.  Without labels the whole holdout is presumed
    # normal and the distinction vanishes.
    if labels is not None and len(labels) == len(holdout) and np.asarray(labels).any():
        labels = np.asarray(labels, dtype=np.int64)
        normal = labels == 0
        if not normal.any():
            normal = np.ones(len(holdout), dtype=bool)
    else:
        labels = None
        normal = np.ones(len(holdout), dtype=bool)
    inc_rate = float((inc_scores > inc_threshold)[normal].mean())
    cand_rate = float((cand_scores > cand_threshold)[normal].mean())

    # A firehose incumbent (false-alarm storm on the holdout — the very
    # state that triggered the retrain) gets nonzero PA%K / affiliation
    # F1 from recall alone, so "don't regress vs the incumbent" would
    # be vacuous; such an incumbent is judged by the alert-rate gate.
    labeled = labels is not None and inc_rate <= max_alert_rate
    if labeled:
        inc_pred = (inc_scores > inc_threshold).astype(np.int64)
        cand_pred = (cand_scores > cand_threshold).astype(np.int64)
        inc_metrics = {
            "pa_k_f1_auc": pa_k_auc(inc_pred, labels).f1_auc,
            "affiliation_f1": affiliation_metrics(inc_pred, labels).f1,
            "alert_rate": inc_rate,
        }
        cand_metrics = {
            "pa_k_f1_auc": pa_k_auc(cand_pred, labels).f1_auc,
            "affiliation_f1": affiliation_metrics(cand_pred, labels).f1,
            "alert_rate": cand_rate,
        }
        regressions = [
            name
            for name in ("pa_k_f1_auc", "affiliation_f1")
            if cand_metrics[name] < inc_metrics[name] - metric_margin
        ]
        promote = not regressions
        reason = (
            "candidate within margin on the paper metric suite"
            if promote
            else "candidate regresses " + ", ".join(regressions)
        )
        return ShadowReport(
            mode="labeled",
            promote=promote,
            reason=reason,
            incumbent=inc_metrics,
            candidate=cand_metrics,
        )

    inc_metrics = {"alert_rate": inc_rate}
    cand_metrics = {"alert_rate": cand_rate}
    if cand_rate > max_alert_rate:
        promote, reason = False, (
            f"candidate false-alarm rate {cand_rate:.2f} exceeds cap {max_alert_rate:.2f}"
        )
    elif cand_rate > inc_rate + metric_margin:
        promote, reason = False, (
            f"candidate alerts more than the incumbent on recent data "
            f"({cand_rate:.2f} > {inc_rate:.2f})"
        )
    else:
        promote, reason = True, (
            f"candidate finds recent data normal "
            f"(alert rate {cand_rate:.2f} vs incumbent {inc_rate:.2f})"
        )
    return ShadowReport(
        mode="label-free",
        promote=promote,
        reason=reason,
        incumbent=inc_metrics,
        candidate=cand_metrics,
    )


# ----------------------------------------------------------------------
# Decisions and the audit trail
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptationDecision:
    """One journaled verdict of the retrain loop.

    ``action`` is ``promoted``, ``rejected`` (shadow gate said no),
    ``failed`` (every guarded retrain attempt errored or blew its
    budget), or ``rolled_back`` (post-promotion probation tripped).
    """

    stream_id: str
    at_index: int
    action: str
    reason: str
    trigger: dict | None = None
    shadow: dict | None = None
    incumbent: str | None = None
    candidate: str | None = None
    elapsed_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "at_index": self.at_index,
            "action": self.action,
            "reason": self.reason,
            "trigger": self.trigger,
            "shadow": self.shadow,
            "incumbent": self.incumbent,
            "candidate": self.candidate,
            "elapsed_s": self.elapsed_s,
        }


class AdaptationJournal:
    """JSONL audit trail of every adaptation decision.

    With a ``path`` each decision is appended as one JSON line the
    moment it is made (crash-safe: the trail survives the process);
    without one the journal is in-memory only.  ``entries`` always
    holds the dictionaries in order.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = path
        self.entries: list[dict] = []

    def record(self, decision: AdaptationDecision) -> None:
        entry = decision.as_dict()
        self.entries.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")


@dataclass(frozen=True)
class AdaptConfig:
    """Tunables for one :class:`AdaptiveController`.

    Attributes
    ----------
    history_points:
        Per-stream ring of recent raw points retraining draws from.
    min_history:
        Points a stream must have banked before a retrain is attempted.
    holdout_fraction:
        Tail fraction of the history held out for shadow evaluation
        (the candidate never trains on it).
    settle_points:
        Points to wait after a drift signal before retraining, so the
        history ring fills with the *new* regime instead of a pre/post
        mixture.
    cooldown_points:
        Minimum points between retrain attempts on one stream.
    backoff_factor:
        Multiplier applied to the cooldown after each failed/rejected
        attempt (exponential backoff against retrain storms).
    budget_seconds:
        :class:`~repro.runtime.RunBudget` wall-clock cap per retrain
        attempt; an overrunning fit counts as a failed attempt.
    max_retries:
        Extra retrain attempts per decision, deterministically reseeded
        through :meth:`~repro.runtime.RetryPolicy.reseed`.
    metric_margin / max_alert_rate / alert_sigma:
        Shadow-evaluation gate knobs (see :func:`shadow_evaluate`).
    probation_points / probation_alert_cap:
        Post-promotion watch: if more than ``probation_alert_cap`` of
        the stream's scored windows alert within ``probation_points``
        points, the promotion is rolled back.
    offload_retrains:
        Run each retrain attempt in a forked child process via
        :func:`repro.serve.shard.subprocess_trainer`, keeping the
        training loop off the ingest path (the shard fabric's workers
        never stall).  Falls back to inline training when the fitted
        scorer cannot cross the process boundary.
    seed:
        Base seed handed to the trainer factory (reseeded per attempt).
    """

    history_points: int = 2048
    min_history: int = 256
    holdout_fraction: float = 0.25
    settle_points: int = 256
    cooldown_points: int = 512
    backoff_factor: float = 2.0
    budget_seconds: float | None = 60.0
    max_retries: int = 1
    metric_margin: float = 0.05
    max_alert_rate: float = 0.2
    alert_sigma: float = 3.0
    probation_points: int = 512
    probation_alert_cap: float = 0.5
    offload_retrains: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.min_history < 8:
            raise ValueError("min_history must be >= 8")
        if self.history_points < self.min_history:
            raise ValueError("history_points must be >= min_history")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 < self.probation_alert_cap <= 1.0:
            raise ValueError("probation_alert_cap must be in (0, 1]")


@dataclass
class _Probation:
    """Watch window for one freshly promoted model."""

    stream_id: str
    version: int
    previous_version: int
    started_at: int
    points: int = 0
    alerts: int = 0


class AdaptiveController:
    """Background retraining controller closing the drift loop.

    Wrap the engine's ingestion path::

        controller = AdaptiveController(engine, trainer_factory=moment_trainer())
        for stream_id, value in feed:
            for alert in controller.ingest(stream_id, value):
                handle(alert)

    The controller is synchronous and single-threaded by design: a
    retrain runs inline on the ingesting thread (bounded by
    ``budget_seconds``), which keeps the failure semantics exact — the
    incumbent serves every batch before and after, and a candidate that
    dies can never leave the engine in a half-swapped state.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.ScoringEngine` to ingest
        through.  Its registry and drift monitor are used directly.
    trainer_factory:
        ``(history, seed) -> WindowScorer`` fitting a candidate on
        recent raw points.  See :func:`moment_trainer` /
        :func:`triad_trainer`.
    label_oracle:
        Optional ``(stream_id, start, end) -> labels`` hook the replay
        harness wires from dataset labels, enabling the labeled shadow
        gate.  ``None`` (production) uses the label-free gate.
    journal_path:
        JSONL audit-trail destination (see :class:`AdaptationJournal`).
    """

    def __init__(
        self,
        engine: ScoringEngine,
        trainer_factory: TrainerFactory,
        config: AdaptConfig | None = None,
        label_oracle: Callable[[str, int, int], np.ndarray | None] | None = None,
        journal_path: str | os.PathLike | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if engine.drift is None:
            raise ValueError(
                "AdaptiveController needs an engine with a drift monitor "
                "(build_engine(..., monitor_drift=True))"
            )
        self.engine = engine
        self.registry = engine.registry
        self.config = config or AdaptConfig()
        if self.config.offload_retrains:
            from .shard import subprocess_trainer

            trainer_factory = subprocess_trainer(
                trainer_factory, timeout_s=self.config.budget_seconds
            )
        self.trainer_factory = trainer_factory
        self.label_oracle = label_oracle
        self.journal = AdaptationJournal(journal_path)
        self.guard = DivergenceGuard()
        self.policy = RetryPolicy(max_retries=self.config.max_retries)
        self._clock = clock or time.monotonic
        # Live reference to the drift monitor's flag set (mutated in
        # place, never rebound) so the per-point check is one set test.
        self._drift_flags = engine.drift.flagged_streams
        self._history: dict[str, RingBuffer] = {}
        self._count: dict[str, int] = {}
        self._next_allowed: dict[str, int] = {}
        self._failures: dict[str, int] = {}
        self._probation: _Probation | None = None
        self.decisions: list[AdaptationDecision] = []

    # ------------------------------------------------------------------
    # Ingestion wrapper
    # ------------------------------------------------------------------
    def ingest(self, stream_id: str, value: float) -> list[StreamAlert]:
        """Feed one point through the engine and run the adapt loop."""
        count = self._count.get(stream_id, 0) + 1
        self._count[stream_id] = count
        history = self._history.get(stream_id)
        if history is None:
            history = self._history[stream_id] = RingBuffer(self.config.history_points)
        history.append(float(value))
        alerts = self.engine.ingest(stream_id, value)
        # Hot path: the controller adds one ring append and two cheap
        # membership tests per point; the heavier probation / retrain
        # machinery only runs once something is armed.
        if self._probation is not None:
            self._watch_probation(stream_id, alerts)
        if stream_id in self._drift_flags:
            self._maybe_adapt(stream_id, count, history)
        return alerts

    def drain(self) -> list[StreamAlert]:
        """Flush the engine's queue (end of stream / shutdown)."""
        return self.engine.drain()

    # ------------------------------------------------------------------
    # The retrain loop
    # ------------------------------------------------------------------
    def _primary_name(self) -> str:
        chain = self.registry.chain
        if not chain:
            raise ValueError("registry has an empty chain; nothing to adapt")
        return chain[0]

    def _maybe_adapt(self, stream_id: str, count: int, history: RingBuffer) -> None:
        drift = self.engine.drift
        if not drift.retrain_recommended(stream_id):
            return
        if count < self._next_allowed.get(stream_id, 0):
            return
        if len(history) < self.config.min_history:
            return
        trigger = drift.last_signal(stream_id)
        if trigger is not None and count < trigger.at_index + self.config.settle_points:
            return
        decision = self._adapt(stream_id, count, history.view(), trigger)
        self._record(decision)
        if decision.action == "promoted":
            self._failures.pop(stream_id, None)
            cooldown = self.config.cooldown_points
        else:
            failures = self._failures.get(stream_id, 0) + 1
            self._failures[stream_id] = failures
            cooldown = int(
                self.config.cooldown_points * self.config.backoff_factor ** failures
            )
        self._next_allowed[stream_id] = count + cooldown

    def _adapt(
        self,
        stream_id: str,
        at_index: int,
        history: np.ndarray,
        trigger: DriftSignal | None,
    ) -> AdaptationDecision:
        config = self.config
        engine_config = self.engine.config
        started = self._clock()
        incumbent_entry = self.registry.active_entry(self._primary_name())
        trigger_dict = trigger.as_dict() if trigger is not None else None

        holdout_len = max(
            int(len(history) * config.holdout_fraction),
            engine_config.window_length + engine_config.stride,
        )
        train_slice = history[:-holdout_len]
        holdout = history[-holdout_len:]

        candidate, last_error = None, "no attempt ran"
        for attempt in range(self.policy.attempts()):
            seed = self.policy.reseed(config.seed, attempt)
            budget = RunBudget(max_seconds=config.budget_seconds, clock=self._clock)
            try:
                with obs.span("serve.adapt.retrain", stream=stream_id, attempt=attempt):
                    fitted = self.trainer_factory(train_slice, seed)
                budget.check_time()
                candidate = fitted
                break
            except (KeyboardInterrupt, SystemExit):
                raise
            except BudgetExceededError as error:
                last_error = f"retrain blew its wall budget: {error}"
                obs.incr("serve.adapt.budget_overruns")
            except Exception as error:  # noqa: BLE001 - guardrail boundary
                last_error = repr(error)
                obs.incr("serve.adapt.retrain_errors")

        if candidate is None:
            obs.event("serve.adapt.failed", stream=stream_id, error=last_error)
            return AdaptationDecision(
                stream_id=stream_id,
                at_index=at_index,
                action="failed",
                reason=last_error,
                trigger=trigger_dict,
                incumbent=incumbent_entry.key(),
                elapsed_s=self._clock() - started,
            )

        labels = (
            self.label_oracle(stream_id, at_index - len(holdout), at_index)
            if self.label_oracle is not None
            else None
        )
        try:
            shadow = shadow_evaluate(
                incumbent_entry.scorer,
                candidate,
                holdout,
                window_length=engine_config.window_length,
                stride=engine_config.stride,
                labels=labels,
                metric_margin=config.metric_margin,
                max_alert_rate=config.max_alert_rate,
                alert_sigma=config.alert_sigma,
            )
        except Exception as error:  # noqa: BLE001 - a broken candidate must not serve
            shadow = ShadowReport(
                mode="guard",
                promote=False,
                reason=f"shadow evaluation raised: {error!r}",
            )
        if shadow.mode == "guard":
            # Non-finite candidate scores are divergence: consume one
            # DivergenceGuard rollback so a stream that keeps producing
            # diverging candidates eventually backs off hard.
            self.guard.assess(float("nan"))

        if not shadow.promote:
            obs.event("serve.adapt.rejected", stream=stream_id, reason=shadow.reason)
            return AdaptationDecision(
                stream_id=stream_id,
                at_index=at_index,
                action="rejected",
                reason=shadow.reason,
                trigger=trigger_dict,
                shadow=shadow.as_dict(),
                incumbent=incumbent_entry.key(),
                elapsed_s=self._clock() - started,
            )

        previous_version = self.registry.active_version(incumbent_entry.name)
        entry = self.registry.register(candidate, name=incumbent_entry.name)
        self.registry.promote(entry.name, entry.version)
        self.registry.reset_chain()
        # The model changed for every stream: clear every drift flag and
        # reference so stale pre-promotion windows cannot immediately
        # re-trigger a retrain storm, and drop alert baselines so the
        # engine re-seeds them from the new model's calibration.
        for flagged in self.engine.drift.flagged:
            self.engine.drift.acknowledge(flagged)
        self.engine.drift.model_changed()
        self.engine.reset_alert_baselines()
        self._probation = _Probation(
            stream_id=stream_id,
            version=entry.version,
            previous_version=previous_version,
            started_at=at_index,
        )
        obs.event(
            "serve.adapt.promoted",
            stream=stream_id,
            model=entry.key(),
            mode=shadow.mode,
        )
        return AdaptationDecision(
            stream_id=stream_id,
            at_index=at_index,
            action="promoted",
            reason=shadow.reason,
            trigger=trigger_dict,
            shadow=shadow.as_dict(),
            incumbent=incumbent_entry.key(),
            candidate=entry.key(),
            elapsed_s=self._clock() - started,
        )

    # ------------------------------------------------------------------
    # Post-promotion probation
    # ------------------------------------------------------------------
    def _watch_probation(self, stream_id: str, alerts: Sequence[StreamAlert]) -> None:
        probation = self._probation
        if probation is None:
            return
        if stream_id == probation.stream_id:
            probation.points += 1
        probation.alerts += sum(
            1 for alert in alerts if alert.stream_id == probation.stream_id
        )
        expected_windows = max(probation.points // self.engine.config.stride, 1)
        cap = max(int(self.config.probation_alert_cap * expected_windows), 1)
        if probation.alerts > cap and probation.points >= self.engine.config.stride:
            self._rollback(probation)
            return
        if probation.points >= self.config.probation_points:
            self._probation = None  # survived probation

    def _rollback(self, probation: _Probation) -> None:
        name = self._primary_name()
        self.registry.promote(name, probation.previous_version)
        self.engine.reset_alert_baselines()
        self.engine.drift.model_changed()
        self._probation = None
        failures = self._failures.get(probation.stream_id, 0) + 1
        self._failures[probation.stream_id] = failures
        count = self._count.get(probation.stream_id, 0)
        self._next_allowed[probation.stream_id] = count + int(
            self.config.cooldown_points * self.config.backoff_factor ** failures
        )
        obs.event(
            "serve.adapt.rolled_back",
            stream=probation.stream_id,
            version=probation.version,
        )
        self._record(
            AdaptationDecision(
                stream_id=probation.stream_id,
                at_index=count,
                action="rolled_back",
                reason=(
                    f"alert rate went pathological during probation "
                    f"({probation.alerts} alerts in {probation.points} points)"
                ),
                incumbent=f"{name}@v{probation.previous_version}",
                candidate=f"{name}@v{probation.version}",
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _record(self, decision: AdaptationDecision) -> None:
        self.decisions.append(decision)
        self.journal.record(decision)
        obs.incr(f"serve.adapt.{decision.action}")

    def timeline(self) -> list[dict]:
        """JSON-ready decision history (rendered by ``ReplayReport``)."""
        return [decision.as_dict() for decision in self.decisions]
