"""Versioned model registry with hot-swap and graceful degradation.

The registry holds *window scorers* — anything that maps a batch of raw
windows to one anomaly score per window — keyed by name and version.
Promoting a version hot-swaps what the engine scores with on the next
batch; no stream state is lost.

Degradation is a circuit-breaker chain: scorers are tried in chain
order, and an entry that keeps erroring (or keeps blowing its latency
budget, timed through :class:`repro.runtime.RunBudget`) trips and is
skipped until :meth:`ModelRegistry.reset`.  The intended production
chain mirrors the model-quality ladder::

    TriAD encoder  ->  spectral residual  ->  streaming discord

i.e. learned representations first, a training-free frequency method
second, and the DAMP-style :class:`~repro.discord.streaming.
StreamingDiscordDetector` as the last-resort detector that can never
refuse a stream.  Retries within one entry follow the installed
:class:`repro.runtime.RetryPolicy`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..baselines.spectral_residual import spectral_residual_saliency
from ..discord.streaming import BASELINE_WINDOW, StreamingDiscordDetector
from ..pipeline import TriADWindowScorer, WindowScorer, default_pipeline
from ..runtime import RetryPolicy, RunBudget
from ..signal.normalize import zscore
from .stream import ReadyWindow

__all__ = [
    "WindowScorer",
    "TriADWindowScorer",
    "SpectralResidualWindowScorer",
    "DiscordWindowScorer",
    "ModelEntry",
    "ModelRegistry",
    "DegradationExhaustedError",
]


class DegradationExhaustedError(RuntimeError):
    """Every scorer in the degradation chain is tripped or failed."""


# The window-scoring contract and the TriAD adapter are defined in the
# pipeline layer (repro.pipeline.contracts / repro.pipeline.adapters)
# and re-exported here so existing serve-facing imports keep working.


class SpectralResidualWindowScorer(WindowScorer):
    """Training-free fallback: max spectral-residual saliency per window."""

    name = "spectral-residual"

    def __init__(
        self,
        average_window: int = 3,
        calibration_series: np.ndarray | None = None,
    ) -> None:
        self.average_window = average_window
        self._calibration_series = (
            np.asarray(calibration_series, dtype=np.float64)
            if calibration_series is not None
            else None
        )
        self._calibration: dict[tuple[int, int], np.ndarray] = {}

    def calibration_scores(self, length: int, stride: int) -> np.ndarray | None:
        if self._calibration_series is None or len(self._calibration_series) < length:
            return None
        key = (length, stride)
        if key not in self._calibration:
            windows, _ = default_pipeline().windows(
                self._calibration_series, length, stride
            )
            self._calibration[key] = self.score_windows(windows, ())
        return self._calibration[key]

    def score_windows(
        self, windows: np.ndarray, batch: Sequence[ReadyWindow]
    ) -> np.ndarray:
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        scores = np.empty(len(windows))
        for i, window in enumerate(windows):
            saliency = spectral_residual_saliency(zscore(window), self.average_window)
            scores[i] = float(saliency.max())
        return scores


class DiscordWindowScorer(WindowScorer):
    """Last-resort fallback built on the streaming discord detector.

    Keeps one :class:`StreamingDiscordDetector` per stream, feeds it the
    *new* points of each window (windows overlap by ``length - stride``)
    and scores the window as the largest left-NN distance those points
    produced.  Warms up from cold after a failover: early windows score
    0 until each stream's detector has seen ``warmup`` subsequences —
    the stream keeps flowing, it just alerts conservatively at first.
    """

    name = "streaming-discord"

    def __init__(
        self,
        subsequence_length: int = 16,
        warmup: int = 8,
        max_history: int = 512,
        calibration_series: np.ndarray | None = None,
        baseline_window: int = BASELINE_WINDOW,
    ) -> None:
        self.subsequence_length = subsequence_length
        self.warmup = warmup
        self.max_history = max_history
        # Trailing left-NN distances each per-stream detector keeps for
        # its alert baseline (passed through to the detector, which
        # validates it against the subsequence length).
        self.baseline_window = baseline_window
        self._calibration_series = (
            np.asarray(calibration_series, dtype=np.float64)
            if calibration_series is not None
            else None
        )
        self._calibration_distances: np.ndarray | None = None
        self._detectors: dict[str, StreamingDiscordDetector] = {}
        self._fed: dict[str, int] = {}

    def calibration_scores(self, length: int, stride: int) -> np.ndarray | None:
        if self._calibration_series is None:
            return None
        if self._calibration_distances is None:
            probe = StreamingDiscordDetector(
                length=self.subsequence_length,
                warmup=max(self.warmup, 2),
                max_history=self.max_history,
                baseline_window=self.baseline_window,
            )
            for value in self._calibration_series:
                probe.update(float(value))
            self._calibration_distances = np.asarray(
                probe._distances, dtype=np.float64
            )
        distances = self._calibration_distances
        if len(distances) < stride:
            return None
        # A live window score is the max left-NN distance over its ~stride
        # new subsequences; aggregate the calibration stream identically
        # so the seeded baseline sits on the same scale.
        blocks = len(distances) // stride
        trimmed = distances[: blocks * stride].reshape(blocks, stride)
        return trimmed.max(axis=1)

    def _detector_for(self, stream_id: str) -> StreamingDiscordDetector:
        detector = self._detectors.get(stream_id)
        if detector is None:
            detector = StreamingDiscordDetector(
                length=self.subsequence_length,
                warmup=max(self.warmup, 2),
                max_history=self.max_history,
                baseline_window=self.baseline_window,
            )
            self._detectors[stream_id] = detector
        return detector

    def score_windows(
        self, windows: np.ndarray, batch: Sequence[ReadyWindow]
    ) -> np.ndarray:
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        scores = np.zeros(len(windows))
        for i, ready in enumerate(batch):
            detector = self._detector_for(ready.stream_id)
            fed = self._fed.get(ready.stream_id, ready.start_index)
            fresh = ready.window[-(ready.end_index - fed) :] if ready.end_index > fed else ()
            before = detector._distances_seen
            for value in fresh:
                detector.update(float(value))
            recorded = detector._distances_seen - before
            if recorded:
                scores[i] = max(detector._distances[-recorded:])
            self._fed[ready.stream_id] = max(fed, ready.end_index)
        return scores


@dataclass
class ModelEntry:
    """One (name, version) scorer plus its circuit-breaker state."""

    name: str
    version: int
    scorer: WindowScorer
    latency_budget: float | None = None
    max_failures: int = 3
    failures: int = field(default=0, init=False)
    tripped: bool = field(default=False, init=False)
    last_error: str | None = field(default=None, init=False)
    calls: int = field(default=0, init=False)

    def key(self) -> str:
        return f"{self.name}@v{self.version}"


class ModelRegistry:
    """Versioned scorers, an active pointer per name, and the chain.

    Parameters
    ----------
    policy:
        :class:`repro.runtime.RetryPolicy` governing in-entry retries
        (``attempts()`` tries per batch before degrading past an entry).
        The default never retries: one error moves straight down the
        chain, which is the right call under a latency budget.
    clock:
        Monotonic time source handed to the per-call
        :class:`~repro.runtime.RunBudget`; injectable for tests.
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time

        self.policy = policy or RetryPolicy(max_retries=0)
        self._clock = clock or time.perf_counter
        self._versions: dict[str, dict[int, ModelEntry]] = {}
        self._active: dict[str, int] = {}
        self._chain: list[str] = []

    # ------------------------------------------------------------------
    # Registration and hot-swap
    # ------------------------------------------------------------------
    def register(
        self,
        scorer: WindowScorer,
        name: str | None = None,
        version: int | None = None,
        latency_budget: float | None = None,
        max_failures: int = 3,
        chain: bool = True,
    ) -> ModelEntry:
        """Add a scorer version.  The first version of a name is promoted
        automatically; later versions wait for :meth:`promote` (hot-swap
        is an explicit act).  ``chain=True`` appends the name to the
        degradation chain if it is not already on it."""
        name = name or scorer.name
        versions = self._versions.setdefault(name, {})
        if version is None:
            version = max(versions, default=0) + 1
        if version in versions:
            raise ValueError(f"{name} v{version} is already registered")
        entry = ModelEntry(
            name=name,
            version=version,
            scorer=scorer,
            latency_budget=latency_budget,
            max_failures=max_failures,
        )
        versions[version] = entry
        if name not in self._active:
            self._active[name] = version
        if chain and name not in self._chain:
            self._chain.append(name)
        return entry

    def register_detector_file(
        self, path: str | os.PathLike, name: str | None = None, **kwargs
    ) -> ModelEntry:
        """Register a persisted TriAD detector (``save_detector`` npz)."""
        scorer = TriADWindowScorer.from_file(path)
        return self.register(scorer, name=name, **kwargs)

    def promote(self, name: str, version: int) -> ModelEntry:
        """Hot-swap the active version of ``name``; clears its breaker."""
        entry = self._entry(name, version)
        self._active[name] = version
        entry.tripped = False
        entry.failures = 0
        obs.event("serve.promote", model=name, version=version)
        return entry

    def reset(self, name: str) -> ModelEntry:
        """Re-arm a tripped model (e.g. after retraining)."""
        entry = self.active_entry(name)
        entry.tripped = False
        entry.failures = 0
        return entry

    def reset_chain(self) -> None:
        """Re-arm every entry on the degradation chain.  Called after a
        promotion: the freshly promoted primary is healthy again, so
        fallbacks tripped while it was degraded get a clean slate too."""
        for name in self._chain:
            self.reset(name)

    def active_version(self, name: str) -> int:
        """The currently promoted version of ``name`` (for rollback)."""
        if name not in self._active:
            raise KeyError(f"no registered model named {name!r}")
        return self._active[name]

    def _entry(self, name: str, version: int) -> ModelEntry:
        try:
            return self._versions[name][version]
        except KeyError:
            raise KeyError(f"no registered model {name} v{version}") from None

    def active_entry(self, name: str) -> ModelEntry:
        if name not in self._active:
            raise KeyError(f"no registered model named {name!r}")
        return self._versions[name][self._active[name]]

    def versions(self, name: str) -> list[int]:
        return sorted(self._versions.get(name, ()))

    # ------------------------------------------------------------------
    # The degradation chain
    # ------------------------------------------------------------------
    def set_chain(self, names: Sequence[str]) -> None:
        """Set the degradation order explicitly (all names must exist)."""
        for name in names:
            if name not in self._versions:
                raise KeyError(f"no registered model named {name!r}")
        self._chain = list(names)

    @property
    def chain(self) -> list[str]:
        return list(self._chain)

    def chain_entries(self) -> list[ModelEntry]:
        return [self.active_entry(name) for name in self._chain]

    def describe(self) -> list[dict]:
        """One status dict per chain entry (for reports and the CLI)."""
        out = []
        for position, entry in enumerate(self.chain_entries()):
            out.append(
                {
                    "position": position,
                    "model": entry.key(),
                    "tripped": entry.tripped,
                    "failures": entry.failures,
                    "calls": entry.calls,
                    "last_error": entry.last_error,
                }
            )
        return out

    # ------------------------------------------------------------------
    # Scoring with degradation
    # ------------------------------------------------------------------
    def score(
        self, windows: np.ndarray, batch: Sequence[ReadyWindow]
    ) -> tuple[np.ndarray, ModelEntry]:
        """Score a batch with the healthiest chain entry.

        Walks the chain; each non-tripped entry gets
        ``policy.attempts()`` tries.  An exception counts one failure; a
        latency-budget overrun also counts one failure *but the scores
        are still returned* (they are late, not wrong).  An entry whose
        failure streak reaches ``max_failures`` trips and is skipped
        until :meth:`reset` or :meth:`promote`.
        """
        if not self._chain:
            raise DegradationExhaustedError("registry has an empty chain")
        for position, entry in enumerate(self.chain_entries()):
            if entry.tripped:
                continue
            for _ in range(self.policy.attempts()):
                budget = (
                    RunBudget(max_seconds=entry.latency_budget, clock=self._clock)
                    if entry.latency_budget is not None
                    else None
                )
                entry.calls += 1
                try:
                    scores = np.asarray(
                        entry.scorer.score_windows(windows, batch), dtype=np.float64
                    )
                    if scores.shape != (len(windows),):
                        raise ValueError(
                            f"scorer {entry.key()} returned shape {scores.shape}, "
                            f"expected ({len(windows)},)"
                        )
                    if not np.all(np.isfinite(scores)):
                        raise ValueError(f"scorer {entry.key()} returned non-finite scores")
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:  # noqa: BLE001 - breaker boundary
                    self._record_failure(entry, error)
                    if entry.tripped:
                        break
                    continue
                overrun = False
                if budget is not None:
                    try:
                        budget.check_time()
                    except Exception as error:
                        # Late but valid: count toward the breaker, keep
                        # the scores so this batch is not wasted.
                        overrun = True
                        self._record_failure(entry, error)
                if not overrun:
                    entry.failures = 0
                if position > 0:
                    obs.incr("serve.fallback_batches")
                return scores, entry
        raise DegradationExhaustedError(
            "no healthy scorer left in chain: "
            + ", ".join(e.key() + (" [tripped]" if e.tripped else "") for e in self.chain_entries())
        )

    def _record_failure(self, entry: ModelEntry, error: BaseException) -> None:
        entry.failures += 1
        entry.last_error = repr(error)
        obs.incr(f"serve.model_errors.{entry.name}")
        if entry.failures >= entry.max_failures:
            entry.tripped = True
            obs.event("serve.model_tripped", model=entry.key(), error=repr(error))
