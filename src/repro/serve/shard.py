"""Sharded multi-worker serving: streams partitioned across processes.

A single :class:`~repro.serve.engine.ScoringEngine` caps out at one
core.  This module splits the stream population across N worker
processes (stdlib ``multiprocessing``, fork start method), each running
its own engine over the streams a consistent hash assigns it, with all
per-stream state externalized through a
:class:`~repro.serve.stores.StoreProvider` so workers are stateless and
restartable.

Topology and guarantees:

- :class:`HashRing` — consistent hashing with virtual nodes.  Adding or
  removing a worker moves only the streams whose hash slot changed
  (~1/N of them), never reshuffles the rest.
- :class:`ShardRouter` — the parent-side fabric.  ``submit()`` groups a
  round of per-stream point chunks by owning worker, sends one
  ``points`` batch per worker over a duplex pipe, and collects replies.
  A batch is **acknowledged** only after its reply arrives *and* the
  per-stream snapshots it carries are persisted to the store; alerts
  are surfaced to the caller only with the ack.  Until then the batch
  stays in the router's in-flight ledger.
- **Crash recovery** — when a worker dies (chaos drill: ``kill -9``)
  the router drains whatever replies the dead worker already wrote to
  the pipe (acking them normally), respawns the process, rehydrates its
  streams from the store, and replays the unacknowledged in-flight
  batches in their original order.  Because every acked batch's
  post-state is in the store and un-acked batches re-run from that
  state, the recovered run's scores and alerts are bit-identical to an
  uninterrupted one, and no acknowledged stream is ever lost.
- **Migration** — ``add_worker`` / ``remove_worker`` export the moved
  streams (engine → snapshot → store) and hydrate them into their new
  owner; :meth:`~repro.serve.engine.ScoringEngine.import_stream`'s
  exactness contract makes the move invisible in the score series.

Workers build their scorers by *name* through
:func:`repro.jobs.registry.build_scorer` (the same string registry the
bulk-inference fabric uses), so a :class:`WorkerSpec` is a small
picklable recipe, not a live model.  See ``docs/SHARDING.md``.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .engine import EngineConfig, ScoringEngine, StreamAlert
from .stores import InMemoryStore, StoreProvider, StreamSnapshot

__all__ = [
    "HashRing",
    "WorkerSpec",
    "WorkerDiedError",
    "RecordingEngine",
    "ShardRouter",
    "build_worker_engine",
    "subprocess_trainer",
]


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hash ring with virtual nodes.

    Hashes are blake2b-based, never Python's salted ``hash()``, so the
    ring is deterministic across processes and runs — a worker and the
    router always agree on ownership.
    """

    def __init__(self, nodes=(), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._hashes: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = self._hash(f"{node}#{i}")
            at = bisect.bisect_left(self._hashes, point)
            self._hashes.insert(at, point)
            self._owners.insert(at, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def owner(self, key: str) -> str:
        if not self._hashes:
            raise RuntimeError("hash ring has no nodes")
        at = bisect.bisect_right(self._hashes, self._hash(key))
        if at == len(self._hashes):
            at = 0
        return self._owners[at]

    def assignments(self, keys) -> dict[str, list[str]]:
        """Map node -> sorted keys it owns (nodes with none included)."""
        out: dict[str, list[str]] = {node: [] for node in self._nodes}
        for key in keys:
            out[self.owner(key)].append(key)
        return {node: sorted(keys) for node, keys in out.items()}


# ----------------------------------------------------------------------
# Worker recipe and engine construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its engine, by value.

    ``detector`` is a :func:`repro.jobs.registry.build_scorer` name
    (``spectral-residual``, ``triad``, ...) fitted inside the worker on
    ``train``; ``detector_file`` instead loads a persisted TriAD
    detector (``save_detector`` npz) — the serve-replay path, where the
    model is trained once up front and shared by every worker.
    ``window_length``/``stride`` override the built scorer's plan;
    ``engine`` holds :class:`~repro.serve.engine.EngineConfig` overrides
    (``max_batch``, ``score_baseline``, ...).  ``record_scores`` makes
    workers return every (stream, index, score) triple alongside alerts
    — the bit-identity drills and benches compare those against an
    unsharded :class:`RecordingEngine`.
    """

    detector: str = "spectral-residual"
    params: dict = field(default_factory=dict)
    train: np.ndarray | None = None
    detector_file: str | None = None
    window_length: int | None = None
    stride: int | None = None
    engine: dict = field(default_factory=dict)
    record_scores: bool = False


class RecordingEngine(ScoringEngine):
    """A :class:`ScoringEngine` that logs every judged (stream, index,
    score) triple.  Workers use it when ``spec.record_scores`` is set;
    the unsharded reference in parity tests uses it directly."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.records: list[tuple[str, int, float]] = []

    def _judge(self, ready, score, entry):
        self.records.append((ready.stream_id, ready.end_index, float(score)))
        return super()._judge(ready, score, entry)

    def take_records(self) -> list[tuple[str, int, float]]:
        records, self.records = self.records, []
        return records


def build_worker_engine(spec: WorkerSpec) -> ScoringEngine:
    """Build the engine a worker (or an unsharded reference) runs.

    Imported lazily: ``jobs`` sits above ``serve`` in the layer order,
    so the registry lookup stays function-scoped.
    """
    from ..serve.registry import ModelRegistry

    if spec.detector_file is not None:
        from ..pipeline.adapters import TriADWindowScorer

        scorer = TriADWindowScorer.from_file(spec.detector_file)
        plan = scorer._detector.plan
        length, stride = plan.length, plan.stride
    else:
        from ..jobs.registry import build_scorer

        if spec.train is None:
            raise ValueError(
                f"WorkerSpec(detector={spec.detector!r}) needs a train "
                f"series to fit on (or use detector_file)"
            )
        scorer, length, stride = build_scorer(
            spec.detector, spec.train, dict(spec.params)
        )
    registry = ModelRegistry()
    registry.register(scorer)
    config = EngineConfig(
        window_length=spec.window_length or length,
        stride=spec.stride or stride,
        **dict(spec.engine),
    )
    engine_cls = RecordingEngine if spec.record_scores else ScoringEngine
    return engine_cls(registry, config)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _alert_payload(alert: StreamAlert) -> tuple:
    return (alert.stream_id, alert.index, alert.score, alert.threshold, alert.model)


def _alert_from_payload(payload: tuple) -> StreamAlert:
    stream_id, index, score, threshold, model = payload
    return StreamAlert(
        stream_id=stream_id,
        index=index,
        score=score,
        threshold=threshold,
        model=model,
    )


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Worker loop: build the engine, serve messages until ``stop``.

    After every ``points`` batch the engine is fully drained before
    snapshots are taken, so a snapshot always captures a quiescent
    stream (empty queue) and rehydrating from it is exact.
    """
    engine = build_worker_engine(spec)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "points":
            _, batch_id, items = message
            alerts: list[StreamAlert] = []
            touched: list[str] = []
            seen: set[str] = set()
            for stream_id, values in items:
                alerts.extend(engine.ingest_many(stream_id, values))
                if stream_id not in seen:
                    seen.add(stream_id)
                    touched.append(stream_id)
            alerts.extend(engine.drain())
            snapshots = [
                engine.export_stream(stream_id).to_payload()
                for stream_id in touched
            ]
            records = (
                engine.take_records()
                if isinstance(engine, RecordingEngine)
                else []
            )
            conn.send(
                (
                    "scored",
                    batch_id,
                    [_alert_payload(alert) for alert in alerts],
                    snapshots,
                    records,
                )
            )
        elif kind == "hydrate":
            _, payloads = message
            for payload in payloads:
                engine.import_stream(StreamSnapshot.from_payload(payload))
            conn.send(("hydrated", len(payloads)))
        elif kind == "export":
            _, stream_ids, evict = message
            payloads = []
            for stream_id in stream_ids:
                snapshot = engine.export_stream(stream_id, evict=evict)
                if snapshot is not None:
                    payloads.append(snapshot.to_payload())
            conn.send(("exported", payloads))
        elif kind == "report":
            conn.send(("report", engine.report()))
        elif kind == "stop":
            conn.send(("stopped",))
            break
        else:  # pragma: no cover - protocol misuse
            conn.send(("error", f"unknown message kind {kind!r}"))
    conn.close()


class WorkerDiedError(RuntimeError):
    """A shard worker's process died mid-conversation."""

    def __init__(self, worker: str) -> None:
        super().__init__(f"shard worker {worker!r} died")
        self.worker = worker


class _WorkerHandle:
    __slots__ = ("name", "process", "conn")

    def __init__(self, name, process, conn) -> None:
        self.name = name
        self.process = process
        self.conn = conn

    def alive(self) -> bool:
        return self.process.is_alive()


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class ShardRouter:
    """Partitions streams across worker processes by consistent hash.

    Usage::

        spec = WorkerSpec(detector="batched-spectral-residual",
                          train=train, record_scores=False)
        with ShardRouter(spec, workers=4, store=InMemoryStore()) as router:
            alerts = router.submit([("stream-7", chunk), ...])

    ``submit`` is one synchronous round: every involved worker scores
    its batch concurrently, and the call returns when all batches are
    acknowledged.  Worker death during a round is healed transparently
    (``auto_heal=True``) by respawn + rehydrate + replay; set
    ``auto_heal=False`` to surface :class:`WorkerDiedError` instead and
    drive :meth:`heal_worker` yourself (the chaos drills do).
    """

    def __init__(
        self,
        spec: WorkerSpec,
        workers: int = 4,
        store: StoreProvider | None = None,
        vnodes: int = 64,
        auto_heal: bool = True,
        worker_names=None,
    ) -> None:
        if workers < 1 and not worker_names:
            raise ValueError("workers must be >= 1")
        import multiprocessing

        self._ctx = multiprocessing.get_context("fork")
        self.spec = spec
        self.store = store if store is not None else InMemoryStore()
        self.auto_heal = auto_heal
        self.ring = HashRing(vnodes=vnodes)
        self._workers: dict[str, _WorkerHandle] = {}
        self._inflight: dict[str, OrderedDict] = {}
        self._results: dict[int, tuple[list, list]] = {}
        self._dead: set[str] = set()
        self._known: set[str] = set()
        self._next_batch = 0
        self.respawns = 0
        self.last_records: list[tuple[str, int, float]] = []
        names = list(worker_names) if worker_names else [
            f"w{i}" for i in range(workers)
        ]
        for name in names:
            self.ring.add_node(name)
            self._spawn(name)

    # -- lifecycle -------------------------------------------------------
    def _spawn(self, name: str) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child, self.spec), daemon=True
        )
        process.start()
        child.close()
        self._workers[name] = _WorkerHandle(name, process, parent)
        self._inflight.setdefault(name, OrderedDict())
        self._dead.discard(name)
        obs.gauge("serve.shard.workers", len(self._workers))

    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)

    @property
    def known_streams(self) -> list[str]:
        return sorted(self._known)

    def worker_pid(self, name: str) -> int:
        return self._workers[name].process.pid

    def close(self) -> None:
        """Stop every worker (politely, then hard) and close the store."""
        for handle in self._workers.values():
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
        self._workers.clear()
        self.store.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the submit round ------------------------------------------------
    def submit(self, items) -> list[StreamAlert]:
        """Route one round of per-stream chunks; return the acked alerts.

        ``items`` is an iterable of ``(stream_id, values)``; per-window
        score triples (when ``spec.record_scores``) land in
        :attr:`last_records`.
        """
        groups: dict[str, list] = {}
        count_points = 0
        for stream_id, values in items:
            values = np.asarray(values, dtype=np.float64).ravel()
            self._known.add(stream_id)
            groups.setdefault(self.ring.owner(stream_id), []).append(
                (stream_id, values)
            )
            count_points += len(values)
        sent: list[tuple[str, int]] = []
        for name, batch in groups.items():
            batch_id = self._next_batch
            self._next_batch += 1
            self._inflight[name][batch_id] = batch
            self._try_send(name, ("points", batch_id, batch))
            sent.append((name, batch_id))
        alerts: list[StreamAlert] = []
        records: list[tuple[str, int, float]] = []
        for name, batch_id in sent:
            self._await(name, batch_id)
            batch_alerts, batch_records = self._results.pop(batch_id)
            alerts.extend(batch_alerts)
            records.extend(batch_records)
        self.last_records = records
        obs.incr("serve.shard.points", count_points)
        obs.incr("serve.shard.batches", len(sent))
        if alerts:
            obs.incr("serve.shard.alerts", len(alerts))
        return alerts

    def _try_send(self, name: str, message) -> None:
        if name in self._dead:
            return  # heal() will replay from the in-flight ledger
        try:
            self._workers[name].conn.send(message)
        except (BrokenPipeError, OSError):
            self._mark_dead(name)

    def _mark_dead(self, name: str) -> None:
        if name not in self._dead:
            self._dead.add(name)
            obs.event("serve.shard.worker_died", worker=name)

    def _await(self, name: str, batch_id: int) -> None:
        while batch_id not in self._results:
            if name in self._dead or not self._workers[name].alive():
                self._mark_dead(name)
                if not self.auto_heal:
                    raise WorkerDiedError(name)
                self.heal_worker(name)
                continue
            try:
                reply = self._workers[name].conn.recv()
            except (EOFError, OSError):
                self._mark_dead(name)
                continue
            self._process_reply(name, reply)

    def _process_reply(self, name: str, reply) -> None:
        kind = reply[0]
        if kind != "scored":  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unexpected reply from {name}: {kind!r}")
        _, batch_id, alert_payloads, snapshot_payloads, records = reply
        # Persist-then-ack: the store write is what makes the batch
        # durable; only after it succeeds do alerts surface.
        self.store.save_many(
            StreamSnapshot.from_payload(payload) for payload in snapshot_payloads
        )
        self._inflight[name].pop(batch_id, None)
        self._results[batch_id] = (
            [_alert_from_payload(payload) for payload in alert_payloads],
            list(records),
        )

    # -- failure recovery ------------------------------------------------
    def heal_worker(self, name: str) -> None:
        """Respawn a dead worker: drain its last replies, rehydrate its
        streams from the store, replay unacknowledged batches in order."""
        handle = self._workers[name]
        # 1. Drain replies the worker wrote before dying — those batches
        #    completed; ack them normally so they are not replayed.
        while True:
            try:
                if not handle.conn.poll(0):
                    break
                reply = handle.conn.recv()
            except (EOFError, OSError):
                break
            self._process_reply(name, reply)
        handle.conn.close()
        handle.process.join(timeout=2.0)
        # 2. Respawn and rehydrate every stream the ring assigns here.
        self._spawn(name)
        self.respawns += 1
        obs.incr("serve.shard.respawns")
        owned = [
            stream_id
            for stream_id in sorted(self._known)
            if self.ring.owner(stream_id) == name
        ]
        self._hydrate(name, owned)
        # 3. Replay the unacknowledged in-flight batches in order.  The
        #    store holds the pre-batch state, so re-running them yields
        #    the exact scores the lost run would have produced.
        pending = list(self._inflight[name].items())
        for batch_id, batch in pending:
            self._workers[name].conn.send(("points", batch_id, batch))
        for batch_id, _ in pending:
            while batch_id in self._inflight[name]:
                reply = self._workers[name].conn.recv()
                self._process_reply(name, reply)
        obs.event("serve.shard.healed", worker=name, replayed=len(pending))

    def _hydrate(self, name: str, stream_ids) -> None:
        payloads = []
        for stream_id in stream_ids:
            snapshot = self.store.load(stream_id)
            if snapshot is not None:
                payloads.append(snapshot.to_payload())
        if not payloads:
            return
        conn = self._workers[name].conn
        conn.send(("hydrate", payloads))
        reply = conn.recv()
        if reply[0] != "hydrated":  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unexpected hydrate reply: {reply[0]!r}")

    # -- topology changes ------------------------------------------------
    def add_worker(self, name: str) -> list[str]:
        """Join a worker; migrate only the streams whose slot moved.

        Returns the migrated stream ids.  Call between submit rounds
        (no in-flight batches).
        """
        self._assert_quiescent()
        before = {
            stream_id: self.ring.owner(stream_id) for stream_id in self._known
        }
        self.ring.add_node(name)
        self._spawn(name)
        moved: dict[str, list[str]] = {}
        for stream_id, old_owner in before.items():
            if self.ring.owner(stream_id) != old_owner:
                moved.setdefault(old_owner, []).append(stream_id)
        for old_owner, stream_ids in moved.items():
            self._migrate(old_owner, name, sorted(stream_ids))
        migrated = sorted(sid for ids in moved.values() for sid in ids)
        obs.event("serve.shard.rebalance", joined=name, moved=len(migrated))
        return migrated

    def remove_worker(self, name: str) -> list[str]:
        """Drain a worker out of the ring; migrate its streams away.

        Returns the migrated stream ids.  Only the departing worker's
        streams move — consistent hashing leaves the rest in place.
        """
        self._assert_quiescent()
        if len(self._workers) <= 1:
            raise ValueError("cannot remove the last worker")
        owned = sorted(
            stream_id
            for stream_id in self._known
            if self.ring.owner(stream_id) == name
        )
        # Export through the store *before* the worker leaves.
        self._export_to_store(name, owned, evict=True)
        self.ring.remove_node(name)
        handle = self._workers.pop(name)
        self._inflight.pop(name, None)
        self._dead.discard(name)
        try:
            handle.conn.send(("stop",))
            handle.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
        handle.conn.close()
        for new_owner, stream_ids in self.ring.assignments(owned).items():
            if stream_ids:
                self._hydrate(new_owner, stream_ids)
        obs.event("serve.shard.rebalance", left=name, moved=len(owned))
        obs.gauge("serve.shard.workers", len(self._workers))
        return owned

    def _migrate(self, source: str, target: str, stream_ids) -> None:
        self._export_to_store(source, stream_ids, evict=True)
        self._hydrate(target, stream_ids)

    def _export_to_store(self, name: str, stream_ids, evict: bool) -> None:
        if not stream_ids:
            return
        if name in self._dead or not self._workers[name].alive():
            return  # store already holds the last acked state
        conn = self._workers[name].conn
        conn.send(("export", list(stream_ids), evict))
        reply = conn.recv()
        if reply[0] != "exported":  # pragma: no cover - protocol misuse
            raise RuntimeError(f"unexpected export reply: {reply[0]!r}")
        self.store.save_many(
            StreamSnapshot.from_payload(payload) for payload in reply[1]
        )

    def _assert_quiescent(self) -> None:
        busy = {
            name: len(pending)
            for name, pending in self._inflight.items()
            if pending
        }
        if busy:
            raise RuntimeError(
                f"topology change with in-flight batches: {busy}; "
                f"finish the submit round first"
            )

    # -- introspection ---------------------------------------------------
    def checkpoint_all(self) -> int:
        """Snapshot every known stream into the store (a full backup,
        beyond the per-batch incremental persistence).  Returns the
        number of streams persisted."""
        total = 0
        for name, stream_ids in self.ring.assignments(self._known).items():
            self._export_to_store(name, stream_ids, evict=False)
            total += len(stream_ids)
        return total

    def report(self) -> dict:
        """JSON-ready fabric report including each worker's engine view."""
        workers = {}
        for name in self.workers:
            handle = self._workers[name]
            if name in self._dead or not handle.alive():
                workers[name] = {"alive": False}
                continue
            try:
                handle.conn.send(("report",))
                reply = handle.conn.recv()
                workers[name] = {"alive": True, **reply[1]}
            except (EOFError, BrokenPipeError, OSError):
                self._mark_dead(name)
                workers[name] = {"alive": False}
        return {
            "workers": workers,
            "ring": {name: len(ids) for name, ids in
                     self.ring.assignments(self._known).items()},
            "streams": len(self._known),
            "respawns": self.respawns,
            "store": type(self.store).__name__,
        }


# ----------------------------------------------------------------------
# Off-path retraining (the adaptive controller's shard-fabric hook)
# ----------------------------------------------------------------------
def subprocess_trainer(trainer_factory, timeout_s: float | None = None):
    """Wrap an adaptive-controller trainer factory to run in a fork.

    Retraining a candidate model can take orders of magnitude longer
    than a scoring batch; running it inside the ingest process stalls
    every stream.  The wrapped factory forks a child, trains there, and
    ships the fitted scorer back over a pipe — the parent's ingest path
    keeps its caches and never runs the training loop.  Falls back to
    inline training when the scorer cannot cross the process boundary
    (unpicklable) or the fork fails; raises ``TimeoutError`` when the
    child outlives ``timeout_s`` (the controller's retry/budget
    machinery treats it like any other failed attempt).
    """
    import multiprocessing
    import pickle

    def train_offloaded(train_series, seed):
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - fork-less platform
            return trainer_factory(train_series, seed)
        parent, child = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_offload_main,
            args=(child, trainer_factory, train_series, seed),
            daemon=True,
        )
        start = time.perf_counter()
        process.start()
        child.close()
        try:
            if not parent.poll(timeout_s):
                process.terminate()
                process.join(timeout=2.0)
                raise TimeoutError(
                    f"offloaded retrain exceeded {timeout_s}s"
                )
            outcome, payload = parent.recv()
        except EOFError:
            # Child died without an answer (e.g. OOM-kill): train inline
            # rather than lose the adaptation attempt.
            process.join(timeout=2.0)
            obs.incr("serve.shard.offload_fallbacks")
            return trainer_factory(train_series, seed)
        finally:
            parent.close()
            process.join(timeout=2.0)
        obs.observe("serve.shard.offload_latency", time.perf_counter() - start)
        if outcome == "unpicklable":
            obs.incr("serve.shard.offload_fallbacks")
            return trainer_factory(train_series, seed)
        if outcome == "error":
            exc_type, message = payload
            raise RuntimeError(f"offloaded retrain failed: {exc_type}: {message}")
        return pickle.loads(payload)

    return train_offloaded


def _offload_main(conn, trainer_factory, train_series, seed) -> None:
    import pickle

    try:
        scorer = trainer_factory(train_series, seed)
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        conn.send(("error", (type(error).__name__, str(error))))
        conn.close()
        return
    try:
        payload = pickle.dumps(scorer)
    except Exception:  # noqa: BLE001 - parent retrains inline
        conn.send(("unpicklable", None))
    else:
        conn.send(("ok", payload))
    conn.close()
    os._exit(0)
