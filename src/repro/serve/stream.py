"""Per-stream sliding-window state for the online scoring engine.

A production stream is unbounded, so per-stream state must be O(window):
:class:`RingBuffer` keeps the last ``capacity`` points in a fixed numpy
array with O(1) append and O(1) incremental mean/std (running sum and
sum-of-squares, corrected on eviction).  :class:`StreamState` layers the
window/stride cadence on top: every ``stride`` points past the first
full window it emits a :class:`ReadyWindow` carrying the raw values plus
the already-computed moments, so downstream z-normalisation costs one
vectorised subtract/divide and zero recomputed statistics.

Float drift from the running sums is bounded by refreshing them from
the buffer contents every ``_REFRESH_EVERY`` appends.

Both classes round-trip exactly through ``snapshot()`` /
``from_snapshot()`` — data, running sums, cursor, append counter, and
emission cadence included — so a stream can be frozen on one worker
and resumed on another with bit-identical subsequent windows (the
contract the :mod:`repro.serve.stores` backends and the shard fabric
rest on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RingBuffer", "ReadyWindow", "StreamState"]

_EPS = 1e-8
_REFRESH_EVERY = 8192


class RingBuffer:
    """Fixed-capacity float ring buffer with O(1) running moments."""

    __slots__ = ("_data", "_size", "_next", "_sum", "_sumsq", "_appends")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._next = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._appends = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._data)

    def append(self, value: float) -> None:
        value = float(value)
        if self._size == len(self._data):
            evicted = self._data[self._next]
            self._sum -= evicted
            self._sumsq -= evicted * evicted
        else:
            self._size += 1
        self._data[self._next] = value
        self._next = (self._next + 1) % len(self._data)
        self._sum += value
        self._sumsq += value * value
        self._appends += 1
        if self._appends % _REFRESH_EVERY == 0:
            self._refresh()

    def extend(self, values: np.ndarray) -> None:
        """Append a chunk of points in vectorised array operations.

        Equivalent to ``for v in values: self.append(v)`` — the buffer
        contents, cursor, and append counter come out identical; the
        running sums are rebuilt with vector reductions, so they can
        differ from the sequential sums by float-association ulps
        (bounded, like the per-point path, by the periodic refresh).
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        n = len(values)
        if n == 0:
            return
        cap = len(self._data)
        before_epoch = self._appends // _REFRESH_EVERY
        self._appends += n
        if n >= cap:
            # The chunk alone overwrites the whole buffer; land the last
            # ``cap`` values exactly where sequential appends would, so
            # the raw array and cursor match the per-point path bit for
            # bit (snapshot comparisons rely on this, not just view()).
            start = (self._next + n - cap) % cap
            tail = values[n - cap :]
            first = cap - start
            self._data[start:] = tail[:first]
            self._data[:start] = tail[first:]
            self._next = (self._next + n) % cap
            self._size = cap
            self._refresh()
            return
        evicted = 0.0
        evicted_sq = 0.0
        overflow = self._size + n - cap
        if overflow > 0:
            # Oldest live values get overwritten: they start at the
            # cursor when already full, else at index 0 (the buffer
            # fills, wraps the cursor to 0, and evicts from there).
            start = self._next if self._size == cap else 0
            idx = (start + np.arange(overflow)) % cap
            old = self._data[idx]
            evicted = float(old.sum())
            evicted_sq = float((old * old).sum())
        first = min(n, cap - self._next)
        self._data[self._next : self._next + first] = values[:first]
        if first < n:
            self._data[: n - first] = values[first:]
        self._next = (self._next + n) % cap
        self._size = min(self._size + n, cap)
        self._sum += float(values.sum()) - evicted
        self._sumsq += float((values * values).sum()) - evicted_sq
        if self._appends // _REFRESH_EVERY != before_epoch:
            self._refresh()

    def _refresh(self) -> None:
        """Re-derive the running sums exactly, bounding float drift."""
        live = self.view()
        self._sum = float(live.sum())
        self._sumsq = float((live * live).sum())

    def snapshot(self) -> dict:
        """Exact serializable state: data, cursor, sums, append counter."""
        return {
            "capacity": len(self._data),
            "data": self._data.copy(),
            "size": self._size,
            "next": self._next,
            "sum": self._sum,
            "sumsq": self._sumsq,
            "appends": self._appends,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "RingBuffer":
        """Rebuild a buffer whose future behaviour is bit-identical to
        the one :meth:`snapshot` captured."""
        buffer = cls(int(snapshot["capacity"]))
        data = np.asarray(snapshot["data"], dtype=np.float64)
        if data.shape != buffer._data.shape:
            raise ValueError(
                f"snapshot data has shape {data.shape}, "
                f"expected {buffer._data.shape}"
            )
        buffer._data[:] = data
        buffer._size = int(snapshot["size"])
        buffer._next = int(snapshot["next"])
        buffer._sum = float(snapshot["sum"])
        buffer._sumsq = float(snapshot["sumsq"])
        buffer._appends = int(snapshot["appends"])
        return buffer

    @property
    def mean(self) -> float:
        return self._sum / self._size if self._size else 0.0

    @property
    def std(self) -> float:
        if not self._size:
            return 0.0
        variance = self._sumsq / self._size - self.mean**2
        return float(np.sqrt(max(variance, 0.0)))

    def view(self) -> np.ndarray:
        """The buffered points in chronological order (a copy)."""
        if self._size < len(self._data):
            return self._data[: self._size].copy()
        return np.concatenate([self._data[self._next :], self._data[: self._next]])


@dataclass(frozen=True)
class ReadyWindow:
    """One window of a stream, ready to be scored.

    ``end_index`` is the number of points the stream had ingested when
    the window closed, so the window covers stream positions
    ``[end_index - len(window), end_index)``.  ``mean``/``std`` are the
    ring buffer's O(1) running moments at emission time.
    """

    stream_id: str
    end_index: int
    window: np.ndarray
    mean: float
    std: float

    @property
    def start_index(self) -> int:
        return self.end_index - len(self.window)

    def znormed(self) -> np.ndarray:
        """The window z-normalised with the precomputed moments."""
        if self.std < _EPS:
            return np.zeros_like(self.window)
        return (self.window - self.mean) / self.std


class StreamState:
    """Sliding-window cadence for one stream.

    Emits the first window once ``length`` points have arrived and a new
    one every ``stride`` points thereafter, mirroring the offline
    segmentation of :func:`repro.signal.windows.sliding_windows`.
    """

    def __init__(self, stream_id: str, length: int, stride: int) -> None:
        if length < 2:
            raise ValueError("window length must be >= 2")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stream_id = stream_id
        self.length = length
        self.stride = stride
        self.buffer = RingBuffer(length)
        self.count = 0
        self._next_emit = length

    @property
    def until_next_emit(self) -> int:
        """Points still to ingest before the next window closes — the
        largest chunk :meth:`extend` accepts right now."""
        return self._next_emit - self.count

    def push(self, value: float) -> ReadyWindow | None:
        """Ingest one point; returns a window when one just closed."""
        self.buffer.append(value)
        self.count += 1
        if self.count < self._next_emit:
            return None
        self._next_emit = self.count + self.stride
        return self._emit()

    def extend(self, values: np.ndarray) -> ReadyWindow | None:
        """Ingest a chunk that spans at most one emission boundary.

        The caller (``ScoringEngine.ingest_many``'s fast path) sizes
        chunks so a window can only close on the chunk's *final* point;
        feeding past the boundary would silently drop windows, so it is
        rejected.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if self.count + len(values) > self._next_emit:
            raise ValueError(
                f"chunk of {len(values)} points crosses the emission "
                f"boundary at {self._next_emit} (stream at {self.count})"
            )
        self.buffer.extend(values)
        self.count += len(values)
        if self.count < self._next_emit:
            return None
        self._next_emit = self.count + self.stride
        return self._emit()

    def _emit(self) -> ReadyWindow:
        return ReadyWindow(
            stream_id=self.stream_id,
            end_index=self.count,
            window=self.buffer.view(),
            mean=self.buffer.mean,
            std=self.buffer.std,
        )

    def snapshot(self) -> dict:
        """Exact serializable state, cadence and ring buffer included."""
        return {
            "stream_id": self.stream_id,
            "length": self.length,
            "stride": self.stride,
            "count": self.count,
            "next_emit": self._next_emit,
            "buffer": self.buffer.snapshot(),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "StreamState":
        """Rebuild a stream whose subsequent pushes emit the exact
        windows the captured stream would have emitted."""
        state = cls(
            str(snapshot["stream_id"]),
            int(snapshot["length"]),
            int(snapshot["stride"]),
        )
        state.buffer = RingBuffer.from_snapshot(snapshot["buffer"])
        state.count = int(snapshot["count"])
        state._next_emit = int(snapshot["next_emit"])
        return state
