"""Per-stream sliding-window state for the online scoring engine.

A production stream is unbounded, so per-stream state must be O(window):
:class:`RingBuffer` keeps the last ``capacity`` points in a fixed numpy
array with O(1) append and O(1) incremental mean/std (running sum and
sum-of-squares, corrected on eviction).  :class:`StreamState` layers the
window/stride cadence on top: every ``stride`` points past the first
full window it emits a :class:`ReadyWindow` carrying the raw values plus
the already-computed moments, so downstream z-normalisation costs one
vectorised subtract/divide and zero recomputed statistics.

Float drift from the running sums is bounded by refreshing them from
the buffer contents every ``_REFRESH_EVERY`` appends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RingBuffer", "ReadyWindow", "StreamState"]

_EPS = 1e-8
_REFRESH_EVERY = 8192


class RingBuffer:
    """Fixed-capacity float ring buffer with O(1) running moments."""

    __slots__ = ("_data", "_size", "_next", "_sum", "_sumsq", "_appends")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._data = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._next = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._appends = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._data)

    def append(self, value: float) -> None:
        value = float(value)
        if self._size == len(self._data):
            evicted = self._data[self._next]
            self._sum -= evicted
            self._sumsq -= evicted * evicted
        else:
            self._size += 1
        self._data[self._next] = value
        self._next = (self._next + 1) % len(self._data)
        self._sum += value
        self._sumsq += value * value
        self._appends += 1
        if self._appends % _REFRESH_EVERY == 0:
            self._refresh()

    def _refresh(self) -> None:
        """Re-derive the running sums exactly, bounding float drift."""
        live = self.view()
        self._sum = float(live.sum())
        self._sumsq = float((live * live).sum())

    @property
    def mean(self) -> float:
        return self._sum / self._size if self._size else 0.0

    @property
    def std(self) -> float:
        if not self._size:
            return 0.0
        variance = self._sumsq / self._size - self.mean**2
        return float(np.sqrt(max(variance, 0.0)))

    def view(self) -> np.ndarray:
        """The buffered points in chronological order (a copy)."""
        if self._size < len(self._data):
            return self._data[: self._size].copy()
        return np.concatenate([self._data[self._next :], self._data[: self._next]])


@dataclass(frozen=True)
class ReadyWindow:
    """One window of a stream, ready to be scored.

    ``end_index`` is the number of points the stream had ingested when
    the window closed, so the window covers stream positions
    ``[end_index - len(window), end_index)``.  ``mean``/``std`` are the
    ring buffer's O(1) running moments at emission time.
    """

    stream_id: str
    end_index: int
    window: np.ndarray
    mean: float
    std: float

    @property
    def start_index(self) -> int:
        return self.end_index - len(self.window)

    def znormed(self) -> np.ndarray:
        """The window z-normalised with the precomputed moments."""
        if self.std < _EPS:
            return np.zeros_like(self.window)
        return (self.window - self.mean) / self.std


class StreamState:
    """Sliding-window cadence for one stream.

    Emits the first window once ``length`` points have arrived and a new
    one every ``stride`` points thereafter, mirroring the offline
    segmentation of :func:`repro.signal.windows.sliding_windows`.
    """

    def __init__(self, stream_id: str, length: int, stride: int) -> None:
        if length < 2:
            raise ValueError("window length must be >= 2")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stream_id = stream_id
        self.length = length
        self.stride = stride
        self.buffer = RingBuffer(length)
        self.count = 0
        self._next_emit = length

    def push(self, value: float) -> ReadyWindow | None:
        """Ingest one point; returns a window when one just closed."""
        self.buffer.append(value)
        self.count += 1
        if self.count < self._next_emit:
            return None
        self._next_emit = self.count + self.stride
        return ReadyWindow(
            stream_id=self.stream_id,
            end_index=self.count,
            window=self.buffer.view(),
            mean=self.buffer.mean,
            std=self.buffer.std,
        )
