"""The multi-stream online scoring engine.

Streams feed points one at a time; each stream's :class:`~repro.serve.
stream.StreamState` emits a window every ``stride`` points, and the
engine queues those windows and scores them in *micro-batches across
streams*: one batched encoder forward pass covers windows from many
streams at once, which is where the throughput over per-stream
sequential scoring comes from (see ``BENCH_serve.json``).

Overload handling is two-layered:

- **admission control** — the pending-window queue is bounded; when it
  is full the *oldest* window is shed (freshness beats completeness for
  monitoring) and counted in ``serve.windows_shed``;
- **latency budget** — if a batch takes longer than
  ``latency_budget_s`` the micro-batch limit halves (floor 1), and it
  recovers multiplicatively while batches run comfortably under budget.
  Model-level budgets/failover live in the registry's degradation
  chain, not here.

Alerting is per-stream and self-calibrating: each stream keeps a
bounded ring of its recent scores and alerts when a new score exceeds
``mean + sigma * std`` of that baseline, exactly the thresholding rule
of the streaming discord detector.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..obs.metrics import Histogram
from .drift import DriftMonitor
from .registry import ModelEntry, ModelRegistry
from .stores import StreamSnapshot
from .stream import ReadyWindow, RingBuffer, StreamState

__all__ = ["EngineConfig", "StreamAlert", "ScoringEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables for one :class:`ScoringEngine`.

    Attributes
    ----------
    window_length / stride:
        Sliding-window cadence applied to every stream (usually taken
        from the fitted model's :class:`~repro.signal.windows.WindowPlan`).
    max_batch:
        Upper bound on windows per scoring call; the adaptive limit
        never exceeds it.
    queue_capacity:
        Admission-control bound on pending windows across all streams.
    latency_budget_s:
        Engine-level per-batch latency target driving the adaptive
        micro-batch limit.  ``None`` disables adaptation.
    alert_sigma / score_baseline / warmup_scores:
        Per-stream alert threshold: ``mean + alert_sigma * std`` over a
        ring of the last ``score_baseline`` scores, active once a stream
        has ``warmup_scores`` scores banked.
    min_spread:
        Absolute floor added to the threshold spread so near-constant
        score baselines do not alert on numerical jitter.
    """

    window_length: int
    stride: int
    max_batch: int = 64
    queue_capacity: int = 512
    latency_budget_s: float | None = None
    alert_sigma: float = 4.0
    score_baseline: int = 256
    warmup_scores: int = 16
    min_spread: float = 1e-6

    def __post_init__(self) -> None:
        if self.window_length < 2:
            raise ValueError("window_length must be >= 2")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.warmup_scores < 1:
            raise ValueError("warmup_scores must be >= 1")
        if self.score_baseline < 1:
            raise ValueError("score_baseline must be >= 1")
        if self.warmup_scores > self.score_baseline:
            raise ValueError(
                f"warmup_scores ({self.warmup_scores}) cannot exceed "
                f"score_baseline ({self.score_baseline}): the baseline "
                f"ring can never bank enough scores to finish warmup"
            )
        if self.alert_sigma <= 0:
            raise ValueError("alert_sigma must be > 0")
        if self.min_spread < 0:
            raise ValueError("min_spread must be >= 0")


@dataclass(frozen=True)
class StreamAlert:
    """An anomaly alert for one window of one stream.

    ``index`` is the stream position of the window's last point
    (exclusive end), so the alert covers
    ``[index - window_length, index)``.
    """

    stream_id: str
    index: int
    score: float
    threshold: float
    model: str


@dataclass
class EngineStats:
    """Lifetime counters mirrored into ``repro.obs``."""

    points_ingested: int = 0
    windows_scored: int = 0
    batches: int = 0
    alerts: int = 0
    shed: int = 0
    fallback_batches: int = 0
    models_used: set = field(default_factory=set)


class ScoringEngine:
    """Ingests points from many streams, scores windows in micro-batches.

    Usage::

        engine = ScoringEngine(registry, EngineConfig(window_length=96,
                                                      stride=24))
        for stream_id, value in feed:
            for alert in engine.ingest(stream_id, value):
                handle(alert)
        engine.drain()        # flush the tail
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: EngineConfig,
        drift: DriftMonitor | None = None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.drift = drift
        self.stats = EngineStats()
        self.latency = Histogram("serve.batch.latency", unit="s")
        self._streams: dict[str, StreamState] = {}
        self._baselines: dict[str, RingBuffer] = {}
        self._queue: deque[ReadyWindow] = deque()
        self._batch_limit = config.max_batch
        self._last_model: str | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def streams(self) -> list[str]:
        return sorted(self._streams)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def batch_limit(self) -> int:
        """Current adaptive micro-batch limit (<= config.max_batch)."""
        return self._batch_limit

    def ingest(self, stream_id: str, value: float) -> list[StreamAlert]:
        """Feed one point; returns alerts from any flush it triggered."""
        state = self._streams.get(stream_id)
        if state is None:
            state = self._streams[stream_id] = StreamState(
                stream_id, self.config.window_length, self.config.stride
            )
        self.stats.points_ingested += 1
        if self.drift is not None:
            self.drift.observe_point(stream_id, value, state.count + 1)
        ready = state.push(value)
        if ready is None:
            return []
        return self._enqueue(ready)

    def _enqueue(self, ready: ReadyWindow) -> list[StreamAlert]:
        if len(self._queue) >= self.config.queue_capacity:
            # Admission control: shed the *oldest* pending window so the
            # freshest data is still scored; never block the stream.
            self._queue.popleft()
            self.stats.shed += 1
            obs.incr("serve.windows_shed")
        self._queue.append(ready)
        if len(self._queue) >= self._batch_limit:
            return self.flush()
        return []

    def ingest_many(self, stream_id: str, values) -> list[StreamAlert]:
        """Feed a chunk of points from one stream.

        Without a drift monitor the chunk takes a vectorised fast path:
        points are appended via :meth:`~repro.serve.stream.StreamState.
        extend` in slices sized to the next emission boundary, so the
        Python-level work is one loop iteration per *window* instead of
        per point.  Queueing, shedding, flush cadence, scores, and
        alerts are identical to the per-point loop (gated by
        ``tests/serve/test_engine.py``).  With a drift monitor attached
        the per-point path is kept — ``observe_point`` is a per-point
        contract.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if self.drift is not None:
            alerts: list[StreamAlert] = []
            for value in values:
                alerts.extend(self.ingest(stream_id, value))
            return alerts
        if len(values) == 0:
            return []
        state = self._streams.get(stream_id)
        if state is None:
            state = self._streams[stream_id] = StreamState(
                stream_id, self.config.window_length, self.config.stride
            )
        self.stats.points_ingested += len(values)
        alerts = []
        position = 0
        total = len(values)
        while position < total:
            take = min(total - position, state.until_next_emit)
            ready = state.extend(values[position : position + take])
            position += take
            if ready is not None:
                alerts.extend(self._enqueue(ready))
        return alerts

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def flush(self) -> list[StreamAlert]:
        """Score one micro-batch from the queue (up to the batch limit)."""
        if not self._queue:
            return []
        take = min(len(self._queue), self._batch_limit)
        batch = [self._queue.popleft() for _ in range(take)]
        windows = np.stack([ready.window for ready in batch])

        start = time.perf_counter()
        with obs.span("serve.batch", size=take):
            scores, entry = self.registry.score(windows, batch)
        elapsed = time.perf_counter() - start

        if self._last_model is not None and entry.key() != self._last_model:
            # Scores are on a model-specific scale: a failover or
            # hot-swap invalidates every stream's alert baseline (and
            # the drift monitor's frozen score references).  Reset and
            # re-warm rather than alert against the old model's scale.
            self._baselines.clear()
            if self.drift is not None:
                self.drift.model_changed()
            obs.event("serve.baseline_reset", model=entry.key())
        self._last_model = entry.key()

        self.latency.observe(elapsed)
        self.stats.batches += 1
        self.stats.windows_scored += take
        self.stats.models_used.add(entry.key())
        if entry.name != (self.registry.chain[0] if self.registry.chain else entry.name):
            self.stats.fallback_batches += 1
        obs.incr("serve.windows_scored", take)
        obs.gauge("serve.queue_depth", len(self._queue))
        obs.observe("serve.batch.size", take)
        self._adapt_batch_limit(elapsed)

        alerts: list[StreamAlert] = []
        for ready, score in zip(batch, scores):
            alert = self._judge(ready, float(score), entry)
            if alert is not None:
                alerts.append(alert)
            if self.drift is not None:
                self.drift.observe_score(ready.stream_id, float(score), ready.end_index)
        if alerts:
            self.stats.alerts += len(alerts)
            obs.incr("serve.alerts", len(alerts))
        return alerts

    def drain(self) -> list[StreamAlert]:
        """Flush until the queue is empty (end of stream / shutdown)."""
        alerts: list[StreamAlert] = []
        while self._queue:
            alerts.extend(self.flush())
        return alerts

    def reset_alert_baselines(self, stream_id: str | None = None) -> None:
        """Drop per-stream alert baselines so they re-seed from the
        active scorer's calibration on the next scored window.

        The engine already does this automatically when a flush observes
        a model change; the adaptive controller calls it explicitly at
        promotion/rollback time so windows queued *before* the swap are
        judged on the new model's scale too, not against a baseline the
        old model calibrated.
        """
        if stream_id is None:
            self._baselines.clear()
        else:
            self._baselines.pop(stream_id, None)

    # ------------------------------------------------------------------
    # State externalization (the shard fabric's contract)
    # ------------------------------------------------------------------
    def export_stream(self, stream_id: str, evict: bool = False) -> StreamSnapshot | None:
        """Capture one stream's full state as a :class:`StreamSnapshot`.

        Covers the sliding-window state, the alert baseline ring, and
        the drift monitor's per-stream references — everything another
        engine needs to continue the stream with bit-identical windows
        and alert decisions.  Callers should :meth:`drain` first so no
        windows of the stream are pending; with ``evict=True`` the
        stream is removed from this engine (migration), and any windows
        of it still queued are dropped and counted as shed.
        """
        state = self._streams.get(stream_id)
        if state is None:
            return None
        baseline = self._baselines.get(stream_id)
        snapshot = StreamSnapshot(
            stream_id=stream_id,
            stream=state.snapshot(),
            baseline=baseline.snapshot() if baseline is not None else None,
            drift=(
                self.drift.snapshot_stream(stream_id)
                if self.drift is not None
                else None
            ),
        )
        if evict:
            self.remove_stream(stream_id)
        return snapshot

    def export_streams(
        self, stream_ids=None, evict: bool = False
    ) -> list[StreamSnapshot]:
        """Export many streams (all known ones by default)."""
        if stream_ids is None:
            stream_ids = self.streams
        snapshots = []
        for stream_id in stream_ids:
            snapshot = self.export_stream(stream_id, evict=evict)
            if snapshot is not None:
                snapshots.append(snapshot)
        return snapshots

    def import_stream(self, snapshot: StreamSnapshot) -> None:
        """Adopt a stream exported by another engine.

        Replaces any local state the stream already has.  Future pushes
        emit the exact windows the source engine would have emitted, and
        the alert baseline continues on the source's banked scores.
        """
        stream_id = snapshot.stream_id
        self._streams[stream_id] = StreamState.from_snapshot(snapshot.stream)
        if snapshot.baseline is not None:
            self._baselines[stream_id] = RingBuffer.from_snapshot(snapshot.baseline)
        else:
            self._baselines.pop(stream_id, None)
        if self.drift is not None:
            if snapshot.drift is not None:
                self.drift.restore_stream(stream_id, snapshot.drift)
            else:
                self.drift.drop_stream(stream_id)

    def remove_stream(self, stream_id: str) -> None:
        """Forget a stream entirely (it migrated away or closed)."""
        self._streams.pop(stream_id, None)
        self._baselines.pop(stream_id, None)
        if self.drift is not None:
            self.drift.drop_stream(stream_id)
        pending = len(self._queue)
        if pending:
            self._queue = deque(
                ready for ready in self._queue if ready.stream_id != stream_id
            )
            dropped = pending - len(self._queue)
            if dropped:
                self.stats.shed += dropped
                obs.incr("serve.windows_shed", dropped)

    def _adapt_batch_limit(self, elapsed: float) -> None:
        budget = self.config.latency_budget_s
        if budget is None:
            return
        if elapsed > budget and self._batch_limit > 1:
            self._batch_limit = max(self._batch_limit // 2, 1)
            obs.event("serve.batch_limit_halved", limit=self._batch_limit)
        elif elapsed < budget / 4 and self._batch_limit < self.config.max_batch:
            self._batch_limit = min(self._batch_limit * 2, self.config.max_batch)

    def _judge(
        self, ready: ReadyWindow, score: float, entry: ModelEntry
    ) -> StreamAlert | None:
        baseline = self._baselines.get(ready.stream_id)
        if baseline is None:
            baseline = self._baselines[ready.stream_id] = RingBuffer(
                self.config.score_baseline
            )
            # Seed from the scorer's normal-data score distribution so
            # alerting is live from the first window — including right
            # after a failover resets every baseline onto a new scale.
            calibration = entry.scorer.calibration_scores(
                self.config.window_length, self.config.stride
            )
            if calibration is not None:
                for value in calibration[-self.config.score_baseline :]:
                    baseline.append(float(value))
        alert = None
        if len(baseline) >= self.config.warmup_scores:
            spread = max(baseline.std, self.config.min_spread)
            threshold = baseline.mean + self.config.alert_sigma * spread
            if score > threshold:
                alert = StreamAlert(
                    stream_id=ready.stream_id,
                    index=ready.end_index,
                    score=score,
                    threshold=threshold,
                    model=entry.key(),
                )
        baseline.append(score)
        return alert

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """JSON-ready snapshot of engine state and lifetime stats."""
        latency = self.latency
        return {
            "streams": len(self._streams),
            "queue_depth": len(self._queue),
            "batch_limit": self._batch_limit,
            "points_ingested": self.stats.points_ingested,
            "windows_scored": self.stats.windows_scored,
            "batches": self.stats.batches,
            "alerts": self.stats.alerts,
            "shed": self.stats.shed,
            "fallback_batches": self.stats.fallback_batches,
            "models_used": sorted(self.stats.models_used),
            "latency_ms": {
                "p50": latency.quantile(0.5) * 1e3,
                "p90": latency.quantile(0.9) * 1e3,
                "p99": latency.quantile(0.99) * 1e3,
                "mean": latency.mean * 1e3,
            },
            "chain": self.registry.describe(),
            "drift_signals": (
                [signal.as_dict() for signal in self.drift.signals]
                if self.drift is not None
                else []
            ),
        }
