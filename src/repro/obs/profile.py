"""Load and summarize observability JSONL exports (``repro profile``).

Renders the export written by :meth:`ObsSession.export_jsonl` as a
plain-text profile: top timed sections by total time, counters, gauges,
value histograms, the trace tree (when spans were recorded), and event
tallies.  Torn or unparseable lines are skipped, mirroring the
checkpoint journal's tolerance for killed writers.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict

__all__ = ["load_records", "render_profile"]


def load_records(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL export; skips blank and corrupt lines."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "type" in record:
                records.append(record)
    return records


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_timers(timers: list[dict], top: int) -> str:
    timers = sorted(timers, key=lambda r: -r.get("sum", 0.0))[:top]
    rows = [
        [
            r["name"],
            str(r.get("count", 0)),
            _fmt_seconds(r.get("sum", 0.0)),
            _fmt_seconds(r.get("mean", 0.0)),
            _fmt_seconds(r.get("p50", 0.0)),
            _fmt_seconds(r.get("p99", 0.0)),
        ]
        for r in timers
    ]
    return _table(["section", "calls", "total", "mean", "p50", "p99"], rows)


def _render_histograms(histograms: list[dict], top: int) -> str:
    histograms = sorted(histograms, key=lambda r: -r.get("count", 0))[:top]
    rows = [
        [
            r["name"],
            str(r.get("count", 0)),
            f"{r.get('mean', 0.0):.4g}",
            f"{r.get('min', 0.0):.4g}" if r.get("min") is not None else "-",
            f"{r.get('max', 0.0):.4g}" if r.get("max") is not None else "-",
            f"{r.get('p50', 0.0):.4g}",
        ]
        for r in histograms
    ]
    return _table(["histogram", "count", "mean", "min", "max", "p50"], rows)


def _render_counters(counters: list[dict], gauges: list[dict], top: int) -> str:
    rows = [
        [r["name"], f"{r.get('value', 0.0):g}"]
        for r in sorted(counters, key=lambda r: -r.get("value", 0.0))[:top]
    ]
    rows.extend(
        [r["name"], "-" if r.get("value") is None else f"{r['value']:g} (gauge)"]
        for r in sorted(gauges, key=lambda r: r["name"])
    )
    return _table(["counter", "value"], rows)


def _render_trace(spans: list[dict], top: int) -> str:
    # Aggregate by name for the hot-span table...
    totals: dict[str, list[float]] = defaultdict(list)
    for record in spans:
        totals[record["name"]].append(record.get("duration", 0.0))
    rows = [
        [name, str(len(durations)), _fmt_seconds(sum(durations)),
         _fmt_seconds(max(durations))]
        for name, durations in sorted(
            totals.items(), key=lambda item: -sum(item[1])
        )[:top]
    ]
    aggregate = _table(["span", "calls", "total", "max"], rows)
    # ...then an indented tree of the slowest top-level spans.
    roots = [s for s in spans if s.get("parent_id") is None]
    roots = sorted(roots, key=lambda s: -s.get("duration", 0.0))[:top]
    children: dict[int, list[dict]] = defaultdict(list)
    for record in spans:
        if record.get("parent_id") is not None:
            children[record["parent_id"]].append(record)

    lines: list[str] = []

    def walk(node: dict, indent: int) -> None:
        status = "" if node.get("status", "ok") == "ok" else f" [{node['status']}]"
        lines.append(
            f"{'  ' * indent}{node['name']}  "
            f"{_fmt_seconds(node.get('duration', 0.0))}{status}"
        )
        for child in sorted(
            children.get(node.get("span_id"), []), key=lambda s: s.get("start", 0.0)
        ):
            walk(child, indent + 1)

    for root in roots:
        walk(root, 0)
    tree = "\n".join(lines)
    return aggregate + ("\n\nslowest call trees:\n" + tree if tree else "")


def render_profile(records: list[dict], top: int = 15) -> str:
    """Build the full plain-text profile for one export."""
    histograms = [r for r in records if r["type"] == "histogram"]
    timers = [r for r in histograms if r.get("unit") == "s"]
    values = [r for r in histograms if r.get("unit") != "s"]
    counters = [r for r in records if r["type"] == "counter"]
    gauges = [r for r in records if r["type"] == "gauge"]
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]

    sections: list[str] = []
    if timers:
        sections.append("== timed sections (by total time) ==\n"
                        + _render_timers(timers, top))
    if counters or gauges:
        sections.append("== counters & gauges ==\n"
                        + _render_counters(counters, gauges, top))
    if values:
        sections.append("== value histograms ==\n"
                        + _render_histograms(values, top))
    if spans:
        sections.append("== trace ==\n" + _render_trace(spans, top))
    if events:
        tally: dict[str, int] = defaultdict(int)
        for record in events:
            tally[record["name"]] += 1
        rows = [[name, str(count)] for name, count in
                sorted(tally.items(), key=lambda item: -item[1])]
        sections.append("== events ==\n" + _table(["event", "count"], rows))
    if not sections:
        return "no records found (was the run instrumented?)"
    return "\n\n".join(sections)
