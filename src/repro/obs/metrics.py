"""Process-local metric primitives: counters, gauges, histograms.

Everything here is plain in-memory state owned by one process — no
sockets, no background threads, no global side effects.  A
:class:`MetricsRegistry` is a namespace of named instruments created
lazily on first use; the facade in :mod:`repro.obs.session` routes all
instrumentation to the registry of the *active* session (or to nothing
when observability is off, which is the default).

Histograms keep exact running aggregates (count/sum/min/max) plus a
bounded reservoir for quantile estimates, so recording a million values
costs a million O(1) updates and a constant amount of memory.  Reservoir
replacement uses a per-instrument deterministic PRNG, keeping exports
reproducible run-to-run.
"""

from __future__ import annotations

import random

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (e.g. DRAG calls, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        self.value += amount

    def record(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A last-value-wins measurement (e.g. the current learning rate)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def record(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "updates": self.updates,
        }


class Histogram:
    """A distribution of observed values with a bounded reservoir.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    quantiles are estimated from a uniform reservoir sample (Vitter's
    Algorithm R) of at most ``reservoir_size`` values.
    """

    __slots__ = ("name", "unit", "count", "sum", "min", "max", "_reservoir",
                 "_capacity", "_rng")

    def __init__(self, name: str, unit: str | None = None,
                 reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.unit = unit
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._capacity = reservoir_size
        # Deterministic per-name seed so repeated runs export identical
        # quantile estimates for identical observation streams.
        self._rng = random.Random(sum(name.encode()) * 2654435761 % (2**31))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Reservoir-estimated ``q``-quantile (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def record(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "unit": self.unit,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per session."""

    def __init__(self, reservoir_size: int = 512) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._reservoir_size = reservoir_size

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, unit: str | None = None) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                name, unit=unit, reservoir_size=self._reservoir_size
            )
        return instrument

    def records(self) -> list[dict]:
        """One JSON-ready dict per instrument, sorted by name for stable
        exports."""
        out: list[dict] = []
        for name in sorted(self.counters):
            out.append(self.counters[name].record())
        for name in sorted(self.gauges):
            out.append(self.gauges[name].record())
        for name in sorted(self.histograms):
            out.append(self.histograms[name].record())
        return out
