"""Span-based tracing with parent/child nesting.

A :class:`Tracer` records :class:`Span` entries — named wall-clock
intervals with attributes — on a stack, so spans opened inside other
spans carry their parent's id and a nesting depth.  The result is a
flat list of closed spans that reconstructs the call tree, cheap enough
to export as JSONL and render with ``repro profile``.

Durations use ``time.perf_counter()`` (monotonic, sub-microsecond);
span start times are additionally anchored to the tracer's wall-clock
epoch so exports can be correlated with logs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One closed (or still-open) traced interval."""

    span_id: int
    parent_id: int | None
    name: str
    start: float  # seconds since the tracer epoch
    depth: int
    attrs: dict = field(default_factory=dict)
    end: float | None = None
    status: str = "ok"

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def record(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects nested spans for one session (single-threaded)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.epoch = time.time()
        self._perf_epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._perf_epoch

    def start(self, name: str, **attrs) -> Span:
        """Open a span; its parent is the innermost still-open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            start=self._now(),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span, status: str = "ok") -> Span:
        """Close ``span`` (and anything opened inside it but left open)."""
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = self._now()
                top.status = status if top is span else top.status
                self.spans.append(top)
            if top is span:
                break
        return span

    def records(self) -> list[dict]:
        return [span.record() for span in self.spans]
