"""Observability sessions and the zero-cost instrumentation facade.

All instrumentation in the codebase goes through the module-level
functions here (:func:`incr`, :func:`gauge`, :func:`observe`,
:func:`timer`, :func:`span`, :func:`event`).  When no session is
active — the default — every one of them is a single ``is None`` check,
so uninstrumented runs pay ~nothing.  Activating a session
(:func:`install` or the :func:`observed` context manager) routes the
same calls into a :class:`MetricsRegistry` and, optionally, a
:class:`~repro.obs.tracing.Tracer`.

Sessions are process-local and single-threaded (like the rest of the
evaluation stack); the JSONL export schema is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "ObsSession",
    "active",
    "enabled",
    "install",
    "uninstall",
    "observed",
    "incr",
    "gauge",
    "observe",
    "timer",
    "span",
    "event",
    "export_jsonl",
]

SCHEMA_VERSION = 1


class ObsSession:
    """One observation window: a metrics registry, optional tracer, and
    a list of structured events."""

    def __init__(self, trace: bool = False, reservoir_size: int = 512) -> None:
        self.metrics = MetricsRegistry(reservoir_size=reservoir_size)
        self.tracer: Tracer | None = Tracer() if trace else None
        self.events: list[dict] = []
        self.started_at = time.time()

    def event(self, name: str, **attrs) -> None:
        self.events.append(
            {
                "type": "event",
                "name": name,
                "time": time.time() - self.started_at,
                "attrs": attrs,
            }
        )

    def records(self) -> list[dict]:
        """Every record in export order: meta, metrics, spans, events."""
        out: list[dict] = [
            {
                "type": "meta",
                "schema": SCHEMA_VERSION,
                "started_at": self.started_at,
                "traced": self.tracer is not None,
            }
        ]
        out.extend(self.metrics.records())
        if self.tracer is not None:
            out.extend(self.tracer.records())
        out.extend(self.events)
        return out

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write one JSON object per line; returns the record count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


_ACTIVE: ObsSession | None = None


def active() -> ObsSession | None:
    """The currently installed session, or ``None``."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def install(session: ObsSession | None = None, trace: bool = False) -> ObsSession:
    """Activate ``session`` (or a fresh one) as the process-wide sink."""
    global _ACTIVE
    if session is None:
        session = ObsSession(trace=trace)
    _ACTIVE = session
    return session


def uninstall() -> ObsSession | None:
    """Deactivate and return the previously active session."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


@contextmanager
def observed(trace: bool = False, session: ObsSession | None = None):
    """Run a block under a (fresh or given) session, restoring the
    previous one afterwards — safe to nest."""
    global _ACTIVE
    previous = _ACTIVE
    current = install(session=session, trace=trace)
    try:
        yield current
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Facade — every function below is a no-op unless a session is active.
# ----------------------------------------------------------------------


def incr(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name``."""
    session = _ACTIVE
    if session is not None:
        session.metrics.counter(name).increment(amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value``."""
    session = _ACTIVE
    if session is not None:
        session.metrics.gauge(name).set(value)


def observe(name: str, value: float, unit: str | None = None) -> None:
    """Record ``value`` into histogram ``name``."""
    session = _ACTIVE
    if session is not None:
        session.metrics.histogram(name, unit=unit).observe(value)


def event(name: str, **attrs) -> None:
    """Record a structured event (e.g. a trainer rollback)."""
    session = _ACTIVE
    if session is not None:
        session.event(name, **attrs)


class _NoopContext:
    """Shared do-nothing context manager for disabled sessions."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopContext()


class _SpanContext:
    """Times a block into a duration histogram and, when the session
    traces, records a nested :class:`Span`."""

    __slots__ = ("_session", "_name", "_attrs", "_span", "_start")

    def __init__(self, session: ObsSession, name: str, attrs: dict) -> None:
        self._session = session
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        if self._session.tracer is not None:
            self._span = self._session.tracer.start(self._name, **self._attrs)
        self._start = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes to the live span (traced sessions only)."""
        if self._span is not None:
            self._span.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        self._session.metrics.histogram(self._name, unit="s").observe(elapsed)
        if self._span is not None:
            self._session.tracer.finish(
                self._span, status="error" if exc_type is not None else "ok"
            )
        return False


def span(name: str, **attrs):
    """Context manager timing a block as histogram ``name`` (always)
    and as a nested trace span (when the session traces)."""
    session = _ACTIVE
    if session is None:
        return _NOOP
    return _SpanContext(session, name, attrs)


def timer(name: str):
    """Alias of :func:`span` for callers that only care about duration."""
    return span(name)


def export_jsonl(path: str | os.PathLike) -> int:
    """Export the active session to ``path``; returns records written
    (0 when no session is active)."""
    session = _ACTIVE
    if session is None:
        return 0
    return session.export_jsonl(path)


# ----------------------------------------------------------------------
# nn timing hooks
# ----------------------------------------------------------------------


def _nn_timing_hook(kind: str, name: str, seconds: float) -> None:
    session = _ACTIVE
    if session is not None:
        session.metrics.histogram(f"nn.{kind}.{name}", unit="s").observe(seconds)


def instrument_nn() -> None:
    """Route per-module forward timings and ``Tensor.backward`` timings
    into the active session (histograms ``nn.forward.<Module>`` /
    ``nn.backward.graph``).  Adds one timestamp pair per module call, so
    keep it off for overhead-sensitive runs."""
    from ..nn import hooks as nn_hooks

    nn_hooks.set_timing_hook(_nn_timing_hook)


def uninstrument_nn() -> None:
    """Remove the nn timing hook installed by :func:`instrument_nn`."""
    from ..nn import hooks as nn_hooks

    if nn_hooks.get_timing_hook() is _nn_timing_hook:
        nn_hooks.set_timing_hook(None)
