"""Observability: process-local metrics, tracing, and profiling.

The subsystem behind the repo's efficiency claims (paper Table IV's
MERLIN speedup, Fig. 8's parameter budgets): counters, gauges, bounded
histograms, and nested spans recorded from the training / evaluation /
discord hot paths, exported as JSONL and summarized by ``repro
profile``.

Instrumentation is *off by default* and every facade call degrades to a
single ``None`` check, so uninstrumented callers pay ~nothing::

    from repro import obs

    with obs.observed(trace=True) as session:
        run_on_archive(...)            # hot paths record themselves
        session.export_jsonl("metrics.jsonl")

See ``docs/OBSERVABILITY.md`` for the export schema and conventions.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import load_records, render_profile
from .session import (
    ObsSession,
    active,
    enabled,
    event,
    export_jsonl,
    gauge,
    incr,
    install,
    instrument_nn,
    observe,
    observed,
    span,
    timer,
    uninstall,
    uninstrument_nn,
)
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "ObsSession",
    "active",
    "enabled",
    "install",
    "uninstall",
    "observed",
    "incr",
    "gauge",
    "observe",
    "timer",
    "span",
    "event",
    "export_jsonl",
    "instrument_nn",
    "uninstrument_nn",
    "load_records",
    "render_profile",
]
