"""Multivariate time series support (extension beyond the paper).

The paper evaluates univariate UCR data, but several of its baselines
(USAD, MTGFlow, Anomaly Transformer) are natively multivariate and the
KPI/SWaT benchmarks it critiques are multi-channel plants.  This module
provides a multivariate dataset container and a SWaT-like correlated
multi-channel generator so :class:`repro.core.MultivariateTriAD` has a
realistic substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .anomalies import inject_anomaly
from .generators import generate_base

__all__ = ["MultivariateDataset", "make_multivariate_dataset"]


@dataclass
class MultivariateDataset:
    """A multi-channel dataset: arrays of shape ``(channels, length)``."""

    name: str
    train: np.ndarray
    test: np.ndarray
    labels: np.ndarray
    affected_channels: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        self.train = np.atleast_2d(np.asarray(self.train, dtype=np.float64))
        self.test = np.atleast_2d(np.asarray(self.test, dtype=np.float64))
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.train.shape[0] != self.test.shape[0]:
            raise ValueError("train and test must have the same channel count")
        if len(self.labels) != self.test.shape[1]:
            raise ValueError("labels must align with the test length")

    @property
    def channels(self) -> int:
        return self.train.shape[0]

    @property
    def anomaly_interval(self) -> tuple[int, int]:
        positions = np.flatnonzero(self.labels)
        if positions.size == 0:
            raise ValueError("no labeled anomaly")
        return int(positions[0]), int(positions[-1] + 1)

    def channel(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return one channel's (train, test) pair."""
        return self.train[index], self.test[index]


def make_multivariate_dataset(
    channels: int = 4,
    affected: int = 2,
    train_length: int = 1500,
    test_length: int = 2000,
    period: int = 48,
    anomaly_type: str = "seasonal",
    anomaly_start: int | None = None,
    anomaly_length: int = 80,
    coupling: float = 0.4,
    noise_level: float = 0.05,
    seed: int = 0,
) -> MultivariateDataset:
    """Generate correlated channels with an anomaly on a channel subset.

    Channels share a common latent driver (weight ``coupling``) plus an
    individual periodic component, the way plant sensors co-vary; the
    anomaly is injected into the first ``affected`` channels only, so a
    detector must localize both *when* and implicitly *where*.
    """
    if not 0 < affected <= channels:
        raise ValueError("affected must be in [1, channels]")
    if anomaly_start is None:
        anomaly_start = max((test_length - anomaly_length) // 2, 0)
    rng = np.random.default_rng(seed)
    # Injection draws come from a separate stream so the *base* channels
    # are identical for any value of `affected` given the same seed —
    # tests and ablations can compare against the clean twin.
    inject_rng = np.random.default_rng(seed + 99_991)
    total = train_length + test_length
    driver = generate_base("sine", total, period, rng, noise_level=0.0)
    train = np.empty((channels, train_length))
    test = np.empty((channels, test_length))
    for c in range(channels):
        own = generate_base(
            "harmonics", total, period, rng, noise_level=noise_level
        )
        series = coupling * driver + (1.0 - coupling) * own
        channel_test = series[train_length:]
        if c < affected:
            channel_test = inject_anomaly(
                channel_test,
                anomaly_type,
                anomaly_start,
                anomaly_length,
                period,
                inject_rng,
            )
        train[c] = series[:train_length]
        test[c] = channel_test
    labels = np.zeros(test_length, dtype=np.int64)
    labels[anomaly_start : anomaly_start + anomaly_length] = 1
    return MultivariateDataset(
        name=f"mv_{channels}ch_{anomaly_type}",
        train=train,
        test=test,
        labels=labels,
        affected_channels=tuple(range(affected)),
    )
