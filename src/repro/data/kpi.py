"""Synthetic KPI / SWaT-style streams with explicit 'one-liner' anomalies.

Section II-B of the paper shows that on KPI and SWaT a *randomly
initialized* LSTM-AE can beat its trained counterpart under honest
metrics, because those benchmarks contain anomalies so explicit that a
random threshold finds them (Fig. 3).  These generators reproduce that
pathology: smooth, weakly periodic operational telemetry punctured by
multiple extreme spikes/drops and saturation plateaus, with unrealistic
anomaly density relative to the UCR archive.
"""

from __future__ import annotations

import numpy as np

from .spec import Dataset

__all__ = ["make_kpi_dataset", "make_swat_dataset"]


def _telemetry(length: int, rng: np.random.Generator, period: int) -> np.ndarray:
    """Slowly drifting seasonal telemetry base signal."""
    t = np.arange(length, dtype=np.float64)
    daily = np.sin(2 * np.pi * t / period)
    weekly = 0.4 * np.sin(2 * np.pi * t / (period * 7) + 1.3)
    drift = np.cumsum(rng.standard_normal(length)) * 0.002
    noise = 0.08 * rng.standard_normal(length)
    return daily + weekly + drift + noise


def _spike_events(
    series: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    count: int,
    magnitude: float,
    max_width: int,
) -> None:
    """Inject obvious spike/drop events in-place and mark their labels."""
    length = len(series)
    for _ in range(count):
        width = int(rng.integers(1, max_width + 1))
        start = int(rng.integers(0, length - width))
        direction = rng.choice([-1.0, 1.0])
        series[start : start + width] += direction * magnitude * (
            1.0 + 0.3 * rng.standard_normal(width)
        )
        labels[start : start + width] = 1


def make_kpi_dataset(
    length: int = 6000,
    train_fraction: float = 0.5,
    events: int = 8,
    seed: int = 0,
) -> Dataset:
    """KPI-style stream: telemetry with several extreme short spikes.

    Unlike UCR datasets, events also occur only in the test half (the
    train half stays clean so training-based detectors are not poisoned),
    but their density is unrealistically high and every one of them is a
    'one-liner' outlier.
    """
    rng = np.random.default_rng(seed)
    series = _telemetry(length, rng, period=288)  # 5-min samples, daily season
    split = int(length * train_fraction)
    labels = np.zeros(length, dtype=np.int64)
    test = series[split:].copy()
    test_labels = labels[split:].copy()
    _spike_events(test, test_labels, rng, count=events, magnitude=6.0, max_width=5)
    return Dataset(name="synthetic-KPI", train=series[:split], test=test, labels=test_labels)


def make_swat_dataset(
    length: int = 8000,
    train_fraction: float = 0.5,
    events: int = 5,
    seed: int = 1,
) -> Dataset:
    """SWaT-style stream: plant actuator cycles with long saturation faults.

    SWaT anomalies are long attack windows where sensors pin to extreme
    values — trivially separable by amplitude, hence the paper's finding
    that PA-based scores there are uninformative.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    cycle = np.tanh(4.0 * np.sin(2 * np.pi * t / 400))  # valve-like square cycles
    level = 0.3 * np.sin(2 * np.pi * t / 2400)
    series = cycle + level + 0.05 * rng.standard_normal(length)
    split = int(length * train_fraction)
    test = series[split:].copy()
    test_labels = np.zeros(len(test), dtype=np.int64)
    for _ in range(events):
        width = int(rng.integers(60, 240))
        start = int(rng.integers(0, len(test) - width))
        test[start : start + width] = 4.0 + 0.1 * rng.standard_normal(width)
        test_labels[start : start + width] = 1
    return Dataset(name="synthetic-SWaT", train=series[:split], test=test, labels=test_labels)
