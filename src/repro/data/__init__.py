"""Data substrate: synthetic UCR-style archive, real-UCR loader,
KPI/SWaT-style one-liner streams."""

from .anomalies import ANOMALY_INJECTORS, inject_anomaly, list_anomaly_types
from .archive import anomaly_length_distribution, make_archive, make_dataset
from .benchmarks import make_nasa_dataset, make_yahoo_dataset
from .generators import FAMILIES, generate_base, list_families
from .kpi import make_kpi_dataset, make_swat_dataset
from .multivariate import MultivariateDataset, make_multivariate_dataset
from .spec import Dataset, DatasetSpec
from .ucr import load_ucr_archive, load_ucr_file, parse_ucr_filename

__all__ = [
    "ANOMALY_INJECTORS",
    "inject_anomaly",
    "list_anomaly_types",
    "anomaly_length_distribution",
    "make_archive",
    "make_dataset",
    "FAMILIES",
    "generate_base",
    "list_families",
    "make_kpi_dataset",
    "make_swat_dataset",
    "make_nasa_dataset",
    "make_yahoo_dataset",
    "MultivariateDataset",
    "make_multivariate_dataset",
    "Dataset",
    "DatasetSpec",
    "load_ucr_archive",
    "load_ucr_file",
    "parse_ucr_filename",
]
