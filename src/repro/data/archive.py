"""Synthetic UCR-style anomaly archive.

Stands in for the UCR Time Series Anomaly Archive (Wu & Keogh, TKDE
2023) in this offline reproduction.  Preserved properties:

- each dataset is a univariate periodic series split into an
  anomaly-free training prefix and a test split;
- the test split hides exactly one anomalous event;
- anomaly lengths vary over a wide, right-skewed range (paper Fig. 6
  spans 1–1700; here the range scales with our shorter series);
- signal families and anomaly types are diverse, and events are
  deliberately non-trivial (no 'one-liner' outliers except the explicit
  ``point`` type).

See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .anomalies import inject_anomaly, list_anomaly_types
from .generators import generate_base, list_families
from .spec import Dataset, DatasetSpec

__all__ = ["make_dataset", "make_archive", "anomaly_length_distribution"]


def make_dataset(spec: DatasetSpec) -> Dataset:
    """Realize a :class:`DatasetSpec` into train/test arrays with labels.

    A single continuous base series covers both splits, so the test
    split's normal regions match the training distribution exactly; the
    anomaly is then injected into the test portion alone.
    """
    rng = np.random.default_rng(spec.seed)
    total = spec.train_length + spec.test_length
    base = generate_base(spec.family, total, spec.period, rng, spec.noise_level)
    train = base[: spec.train_length]
    test_clean = base[spec.train_length :]

    test = inject_anomaly(
        test_clean,
        spec.anomaly_type,
        spec.anomaly_start,
        spec.anomaly_length,
        spec.period,
        rng,
    )
    labels = np.zeros(spec.test_length, dtype=np.int64)
    labels[spec.anomaly_start : spec.anomaly_start + spec.anomaly_length] = 1
    return Dataset(name=spec.name, train=train, test=test, labels=labels, spec=spec)


def _sample_anomaly_length(rng: np.random.Generator, period: int, max_length: int) -> int:
    """Right-skewed length draw echoing the archive's Fig. 6 distribution.

    Most events span a fraction of a period up to a couple of periods;
    a long tail reaches several periods.
    """
    draw = rng.lognormal(mean=np.log(period * 0.6), sigma=1.0)
    return int(np.clip(round(draw), 4, max_length))


def make_archive(
    size: int = 25,
    seed: int = 7,
    train_length: int = 2000,
    test_length: int = 2500,
    families: list[str] | None = None,
    anomaly_types: list[str] | None = None,
) -> list[Dataset]:
    """Build a reproducible archive of ``size`` datasets.

    Families and anomaly types cycle round-robin with per-dataset random
    periods and anomaly placement, so every (family, type) combination
    appears as the archive grows.
    """
    families = families or list_families()
    anomaly_types = anomaly_types or [t for t in list_anomaly_types() if t != "point"]
    master = np.random.default_rng(seed)
    datasets = []
    for index in range(size):
        family = families[index % len(families)]
        anomaly_type = anomaly_types[index % len(anomaly_types)]
        period = int(master.integers(24, 80))
        max_length = min(test_length // 4, 6 * period)
        anomaly_length = _sample_anomaly_length(master, period, max_length)
        margin = max(2 * period, 50)
        latest = test_length - anomaly_length - margin
        anomaly_start = int(master.integers(margin, max(latest, margin + 1)))
        spec = DatasetSpec(
            name=f"{index + 1:03d}_{family}_{anomaly_type}",
            family=family,
            period=period,
            train_length=train_length,
            test_length=test_length,
            anomaly_type=anomaly_type,
            anomaly_start=anomaly_start,
            anomaly_length=anomaly_length,
            noise_level=float(master.uniform(0.03, 0.08)),
            seed=int(master.integers(0, 2**31 - 1)),
        )
        datasets.append(make_dataset(spec))
    return datasets


def anomaly_length_distribution(datasets: list[Dataset]) -> dict[str, float]:
    """Histogram of anomaly lengths, bucketed as in the paper's Fig. 6.

    Returns the fraction of datasets per bucket.
    """
    buckets = [(0, 16), (16, 64), (64, 128), (128, 256), (256, 512), (512, 1 << 30)]
    names = ["<16", "16-63", "64-127", "128-255", "256-511", ">=512"]
    counts = np.zeros(len(buckets))
    for dataset in datasets:
        length = dataset.anomaly_length
        for i, (lo, hi) in enumerate(buckets):
            if lo <= length < hi:
                counts[i] += 1
                break
    total = max(len(datasets), 1)
    return {name: float(count) / total for name, count in zip(names, counts)}
