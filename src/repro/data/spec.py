"""Dataset containers shared by the synthetic archive and the real UCR loader."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DatasetSpec", "Dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Blueprint for one synthetic UCR-style dataset.

    Mirrors the UCR Anomaly Archive contract: an anomaly-free training
    prefix, and a test split hiding exactly one anomalous event.
    """

    name: str
    family: str
    period: int
    train_length: int
    test_length: int
    anomaly_type: str
    anomaly_start: int
    anomaly_length: int
    noise_level: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.anomaly_start < 0 or self.anomaly_length < 1:
            raise ValueError("anomaly must have non-negative start and length >= 1")
        if self.anomaly_start + self.anomaly_length > self.test_length:
            raise ValueError("anomaly exceeds the test split")
        if self.period < 2:
            raise ValueError("period must be at least 2")


@dataclass
class Dataset:
    """A realized dataset: train split, test split, point-wise labels.

    ``labels`` is a ``(test_length,)`` array of {0, 1} marking the single
    anomalous event (or several events for the KPI/SWaT-style streams).
    """

    name: str
    train: np.ndarray
    test: np.ndarray
    labels: np.ndarray
    spec: DatasetSpec | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.train = np.asarray(self.train, dtype=np.float64)
        self.test = np.asarray(self.test, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.labels) != len(self.test):
            raise ValueError("labels must align with the test split")

    @property
    def anomaly_interval(self) -> tuple[int, int]:
        """Half-open ``[start, end)`` of the first labeled event."""
        positions = np.flatnonzero(self.labels)
        if len(positions) == 0:
            raise ValueError(f"dataset {self.name!r} has no labeled anomaly")
        start = int(positions[0])
        # Find the end of the first contiguous run.
        breaks = np.flatnonzero(np.diff(positions) > 1)
        end = int(positions[breaks[0]] + 1) if len(breaks) else int(positions[-1] + 1)
        return start, end

    @property
    def anomaly_length(self) -> int:
        start, end = self.anomaly_interval
        return end - start

    def events(self) -> list[tuple[int, int]]:
        """All labeled events as half-open intervals."""
        positions = np.flatnonzero(self.labels)
        if len(positions) == 0:
            return []
        splits = np.flatnonzero(np.diff(positions) > 1)
        starts = np.concatenate([[positions[0]], positions[splits + 1]])
        ends = np.concatenate([positions[splits] + 1, [positions[-1] + 1]])
        return [(int(s), int(e)) for s, e in zip(starts, ends)]
