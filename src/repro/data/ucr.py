"""Loader for the *real* UCR Time Series Anomaly Archive file format.

Archive files are named::

    <id>_UCR_Anomaly_<name>_<train_end>_<anomaly_start>_<anomaly_end>.txt

and contain one value per line (some variants pack whitespace-separated
values on a single line; both are handled).  Indices in the file name
are 1-based positions in the *full* series; the test split starts at
``train_end``.  This loader lets the whole library run unmodified on the
genuine archive when it is available on disk.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import numpy as np

from .spec import Dataset

__all__ = ["parse_ucr_filename", "load_ucr_file", "load_ucr_archive"]

_NAME_RE = re.compile(
    r"^(?P<id>\d+)_UCR_Anomaly_(?P<name>.+?)_(?P<train_end>\d+)"
    r"_(?P<start>\d+)_(?P<end>\d+)\.txt$"
)


def parse_ucr_filename(filename: str) -> dict[str, int | str]:
    """Extract metadata from a UCR archive file name.

    Returns a dict with ``id``, ``name``, ``train_end``, ``start``,
    ``end`` (all indices 1-based, as in the archive).
    """
    match = _NAME_RE.match(os.path.basename(filename))
    if match is None:
        raise ValueError(f"not a UCR anomaly archive file name: {filename!r}")
    groups = match.groupdict()
    return {
        "id": int(groups["id"]),
        "name": groups["name"],
        "train_end": int(groups["train_end"]),
        "start": int(groups["start"]),
        "end": int(groups["end"]),
    }


def load_ucr_file(path: str | os.PathLike) -> Dataset:
    """Load one UCR archive file into a :class:`Dataset`.

    The 1-based inclusive anomaly interval from the file name is
    converted into 0-based point-wise labels over the test split.
    """
    meta = parse_ucr_filename(str(path))
    values = np.loadtxt(path).ravel().astype(np.float64)
    train_end = int(meta["train_end"])
    if not 0 < train_end < len(values):
        raise ValueError(f"train_end {train_end} out of range for {path}")
    train = values[:train_end]
    test = values[train_end:]
    labels = np.zeros(len(test), dtype=np.int64)
    # Convert 1-based absolute inclusive interval to test-relative slice.
    start = int(meta["start"]) - 1 - train_end
    end = int(meta["end"]) - train_end
    if start < 0 or end > len(test) or start >= end:
        raise ValueError(f"anomaly interval out of test range in {path}")
    labels[start:end] = 1
    return Dataset(name=f"{meta['id']:03d}_{meta['name']}", train=train, test=test, labels=labels)


def load_ucr_archive(directory: str | os.PathLike, limit: int | None = None) -> list[Dataset]:
    """Load every archive file under ``directory`` (sorted by id)."""
    paths = sorted(
        p for p in Path(directory).iterdir() if _NAME_RE.match(p.name)
    )
    if limit is not None:
        paths = paths[:limit]
    return [load_ucr_file(p) for p in paths]
