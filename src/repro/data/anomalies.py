"""Anomaly injectors for the synthetic archive.

Implements the six anomaly types the paper showcases (Fig. 16) plus
point outliers:

- ``noise``        unexpected high-frequency fluctuations
- ``duration``     unexpected extension of stable behavior (a plateau)
- ``seasonal``     abrupt doubling of the inherent seasonality
- ``trend``        unanticipated local rise
- ``level_shift``  lasting jump or drop
- ``contextual``   normal sequence subtly distorted in shape
- ``point``        isolated extreme spikes

Every injector takes the full series and modifies ``[start, start+length)``
in a copy; magnitudes are scaled by the local signal deviation so the
events stay non-trivial (the UCR archive deliberately avoids 'one-liner'
anomalies a random threshold could find).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ANOMALY_INJECTORS", "inject_anomaly", "list_anomaly_types"]

Injector = Callable[[np.ndarray, int, int, int, np.random.Generator], np.ndarray]


def _segment_scale(series: np.ndarray, start: int, length: int) -> float:
    """Local amplitude scale used to size the injected disturbance."""
    lo = max(start - 3 * length, 0)
    hi = min(start + 4 * length, len(series))
    scale = float(np.std(series[lo:hi]))
    return max(scale, 1e-3)


def _noise(series, start, length, period, rng):
    out = series.copy()
    scale = _segment_scale(series, start, length)
    out[start : start + length] += rng.standard_normal(length) * scale * 0.7
    return out


def _duration(series, start, length, period, rng):
    out = series.copy()
    # Hold the level reached at the segment start: stable behavior that
    # lasts longer than it should.
    level = float(np.mean(series[max(start - period // 4, 0) : start + 1]))
    jitter = 0.02 * _segment_scale(series, start, length)
    out[start : start + length] = level + rng.standard_normal(length) * jitter
    return out


def _seasonal(series, start, length, period, rng):
    out = series.copy()
    # Double the local frequency by reading the segment at twice the
    # speed; wrap to keep continuity within the segment.
    segment = series[start : start + length]
    idx = (2 * np.arange(length)) % max(length, 1)
    out[start : start + length] = segment[idx]
    return out


def _trend(series, start, length, period, rng):
    out = series.copy()
    scale = _segment_scale(series, start, length)
    direction = rng.choice([-1.0, 1.0])
    ramp = np.linspace(0.0, direction * scale * 1.2, length)
    out[start : start + length] += ramp
    return out


def _level_shift(series, start, length, period, rng):
    out = series.copy()
    scale = _segment_scale(series, start, length)
    direction = rng.choice([-1.0, 1.0])
    out[start : start + length] += direction * scale * 0.6
    return out


def _contextual(series, start, length, period, rng):
    out = series.copy()
    # Subtle shape distortion: smooth away fine structure (e.g. the
    # secondary ECG peak in the paper's "025" case study) while keeping
    # the coarse waveform, amplitude, and level intact.
    segment = series[start : start + length]
    width = max(period // 6, 3)
    kernel = np.ones(width) / width
    padded = np.pad(segment, (width, width), mode="reflect")
    smoothed = np.convolve(padded, kernel, mode="same")[width:-width]
    out[start : start + length] = smoothed
    return out


def _point(series, start, length, period, rng):
    out = series.copy()
    scale = _segment_scale(series, start, length)
    count = max(1, min(length, 3))
    positions = start + rng.choice(length, size=count, replace=False)
    out[positions] += rng.choice([-1.0, 1.0], size=count) * scale * 5.0
    return out


ANOMALY_INJECTORS: dict[str, Injector] = {
    "noise": _noise,
    "duration": _duration,
    "seasonal": _seasonal,
    "trend": _trend,
    "level_shift": _level_shift,
    "contextual": _contextual,
    "point": _point,
}


def list_anomaly_types() -> list[str]:
    """Names of all available anomaly injectors."""
    return sorted(ANOMALY_INJECTORS)


def inject_anomaly(
    series: np.ndarray,
    anomaly_type: str,
    start: int,
    length: int,
    period: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a copy of ``series`` with the named anomaly injected.

    Raises
    ------
    KeyError
        For unknown ``anomaly_type``.
    ValueError
        If the segment does not fit inside the series.
    """
    series = np.asarray(series, dtype=np.float64)
    if start < 0 or start + length > len(series):
        raise ValueError("anomaly segment out of range")
    if anomaly_type not in ANOMALY_INJECTORS:
        raise KeyError(
            f"unknown anomaly type {anomaly_type!r}; choose from {list_anomaly_types()}"
        )
    return ANOMALY_INJECTORS[anomaly_type](series, start, length, period, rng)
