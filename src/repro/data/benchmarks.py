"""Yahoo/NASA-style benchmark simulators with their documented flaws.

The paper (Sec. II-B, citing Wu & Keogh) criticizes legacy TSAD
benchmarks for triviality, unrealistic anomaly density, and mislabeled
ground truth.  These generators reproduce each pathology on demand so
the evaluation-pitfall experiments can quantify them:

- :func:`make_yahoo_dataset` — web-telemetry with *many* short explicit
  spikes (unrealistic density + one-liner triviality);
- :func:`make_nasa_dataset` — spacecraft-like piecewise command regimes
  with one labeled regime anomaly, and an optional ``label_offset`` that
  shifts the ground-truth labels off the true event (mislabeling).
"""

from __future__ import annotations

import numpy as np

from .spec import Dataset

__all__ = ["make_yahoo_dataset", "make_nasa_dataset"]


def make_yahoo_dataset(
    length: int = 4000,
    train_fraction: float = 0.4,
    events: int = 12,
    seed: int = 0,
) -> Dataset:
    """Yahoo-S5-style stream: seasonal web traffic with dense spike labels.

    Anomaly density here is far above anything realistic (the paper's
    'unrealistic densities' critique): ``events`` spikes in the test
    half, each 1-3 points, all amplitude-explicit.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(length, dtype=np.float64)
    daily = np.sin(2 * np.pi * t / 144)
    trend = 0.0003 * t
    noise = 0.12 * rng.standard_normal(length)
    series = daily + trend + noise

    split = int(length * train_fraction)
    test = series[split:].copy()
    labels = np.zeros(len(test), dtype=np.int64)
    for _ in range(events):
        width = int(rng.integers(1, 4))
        start = int(rng.integers(0, len(test) - width))
        test[start : start + width] += rng.choice([-1.0, 1.0]) * rng.uniform(5.0, 8.0)
        labels[start : start + width] = 1
    return Dataset(name="synthetic-Yahoo", train=series[:split], test=test, labels=labels)


def make_nasa_dataset(
    length: int = 5000,
    train_fraction: float = 0.5,
    label_offset: int = 0,
    seed: int = 0,
) -> Dataset:
    """NASA-MSL/SMAP-style telemetry: piecewise command regimes.

    The test half contains one true anomaly — an off-nominal regime with
    a drifting level.  ``label_offset`` shifts the *labels* relative to
    the true event, reproducing the archive's mislabeled-ground-truth
    pathology; downstream metrics then punish detectors for being right.
    """
    rng = np.random.default_rng(seed)
    # Piecewise-constant command levels with dwell times.
    levels = rng.uniform(-1.0, 1.0, size=length // 200 + 2)
    series = np.repeat(levels, 200)[:length]
    series += 0.05 * rng.standard_normal(length)

    split = int(length * train_fraction)
    test = series[split:].copy()
    labels = np.zeros(len(test), dtype=np.int64)

    # The true anomaly: an unprecedented drifting ramp regime.  The
    # event placement must not depend on label_offset, so that datasets
    # differing only in labels share identical data.
    width = 150
    start = int(rng.integers(len(test) // 4, len(test) - width - 1))
    test[start : start + width] = (
        test[start] + np.linspace(0.0, 2.5, width) + 0.05 * rng.standard_normal(width)
    )
    label_start = int(np.clip(start + label_offset, 0, len(test) - width))
    labels[label_start : label_start + width] = 1
    return Dataset(name="synthetic-NASA", train=series[:split], test=test, labels=labels)
