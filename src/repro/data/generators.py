"""Base signal families for the synthetic archive.

The UCR Anomaly Archive spans health (ECG, respiration), industry, and
biology traces.  Each family here produces a periodic univariate signal
with comparable statistical character; the archive builder mixes them so
no single waveform dominates, mirroring the archive's diversity.

Every generator has the signature ``family(t, period, rng) -> values``
where ``t`` is an integer time grid.  Generators are deterministic given
the rng, and the randomness they draw (phases, harmonic mixes, envelope
rates) is sampled once per dataset, not per point, so train and test
splits remain mutually consistent when generated from one call.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["FAMILIES", "generate_base", "list_families"]

_TWO_PI = 2.0 * np.pi


def _sine(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    phase = rng.uniform(0, _TWO_PI)
    return np.sin(_TWO_PI * t / period + phase)


def _harmonics(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    phase = rng.uniform(0, _TWO_PI)
    weights = rng.uniform(0.2, 0.6, size=2)
    base = np.sin(_TWO_PI * t / period + phase)
    second = weights[0] * np.sin(2 * _TWO_PI * t / period + phase * 1.7)
    third = weights[1] * np.sin(3 * _TWO_PI * t / period + phase * 0.3)
    return base + second + third


def _ecg_like(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    """Spike-train waveform: a sharp main peak plus a smaller secondary
    peak each cycle — the morphology of the paper's UCR "025" case study."""
    phase_offset = rng.uniform(0, period)
    main_width = max(period * 0.04, 1.0)
    secondary_width = max(period * 0.08, 1.0)
    secondary_height = rng.uniform(0.25, 0.45)
    secondary_delay = period * rng.uniform(0.25, 0.40)
    position = (t + phase_offset) % period
    main = np.exp(-0.5 * ((position - period * 0.15) / main_width) ** 2)
    secondary = secondary_height * np.exp(
        -0.5 * ((position - period * 0.15 - secondary_delay) / secondary_width) ** 2
    )
    baseline = 0.08 * np.sin(_TWO_PI * t / period)
    return main + secondary + baseline


def _sawtooth(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    phase_offset = rng.uniform(0, period)
    position = ((t + phase_offset) % period) / period
    return 2.0 * position - 1.0


def _amplitude_modulated(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    phase = rng.uniform(0, _TWO_PI)
    envelope_period = period * rng.integers(6, 12)
    envelope = 0.75 + 0.25 * np.sin(_TWO_PI * t / envelope_period)
    return envelope * np.sin(_TWO_PI * t / period + phase)


def _square_like(t: np.ndarray, period: int, rng: np.random.Generator) -> np.ndarray:
    phase = rng.uniform(0, _TWO_PI)
    sharpness = rng.uniform(3.0, 6.0)
    return np.tanh(sharpness * np.sin(_TWO_PI * t / period + phase))


FAMILIES: dict[str, Callable[[np.ndarray, int, np.random.Generator], np.ndarray]] = {
    "sine": _sine,
    "harmonics": _harmonics,
    "ecg": _ecg_like,
    "sawtooth": _sawtooth,
    "am": _amplitude_modulated,
    "square": _square_like,
}


def list_families() -> list[str]:
    """Names of all available signal families."""
    return sorted(FAMILIES)


def generate_base(
    family: str,
    length: int,
    period: int,
    rng: np.random.Generator,
    noise_level: float = 0.05,
) -> np.ndarray:
    """Generate ``length`` points of the named family plus observation noise."""
    if family not in FAMILIES:
        raise KeyError(f"unknown signal family {family!r}; choose from {list_families()}")
    t = np.arange(length, dtype=np.float64)
    clean = FAMILIES[family](t, period, rng)
    noise = noise_level * rng.standard_normal(length)
    return clean + noise
