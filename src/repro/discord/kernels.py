"""Shared chunked distance-kernel layer for discord discovery.

Every discord algorithm in this package reduces to the same primitive:
z-normalized Euclidean distances between subsequences, computed via the
dot-product identity ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b``.  This
module is the one home for that math — the same
kernel-family-behind-one-contract design ``repro.nn.conv1d`` uses — so
DRAG, MERLIN, MERLIN++, DAMP, the matrix profile and the streaming
detector all draw from one set of batched sweeps instead of hand-rolling
their own loops.

Three pieces:

- :class:`SeriesContext` — computes prefix-sum rolling moments **once
  per series** and derives per-length z-norm statistics on demand, so a
  MERLIN length sweep never re-normalizes the subsequence matrix from
  scratch at each length.  Z-normed matrices for the most recent lengths
  are kept in a tiny LRU; the series rFFT is cached for the fft path.
- Batched primitives — :func:`distance_profiles` (squared distances from
  a batch of query subsequences to *all* subsequences) and
  :func:`nn_profile` / :func:`nearest_neighbor_distances` (the full
  nearest-non-trivial-neighbor profile), each dispatching on the active
  mode.
- Mode dispatch — :func:`set_discord_mode` / :func:`get_discord_mode` /
  :func:`discord_mode`, mirroring ``repro.nn.set_conv1d_mode``:

  - ``"auto"`` (default) — blocked GEMM sweeps, switching to the FFT
    path for very long subsequences on large counts;
  - ``"blocked"`` — chunked matrix products against the cached z-norm
    matrix;
  - ``"fft"`` — MASS-style sliding dot products through the cached
    series rFFT plus prefix-sum moments (no z matrix materialized).
    Falls back to ``blocked`` when any window's std is too small for
    the FFT's absolute error to survive the z-normalization divide
    (counted in ``discord.kernels.fft_fallbacks``);
  - ``"reference"`` — the original scalar/loop implementations, kept
    verbatim in each algorithm module as the equivalence oracle.

Numerical contract (asserted by the hypothesis suite in
``tests/discord``): blocked/fft modes match the reference oracle with
discord indices identical and distances within ``1e-9`` on
reasonably-scaled series.  Prefix-sum moments lose precision when a
window's variance is tiny relative to its mean square (catastrophic
cancellation); such windows are detected and their moments recomputed
with the exact two-pass formula, so constant subsequences behave
bit-identically to :func:`repro.discord.distance.znorm_subsequences`.
"""

from __future__ import annotations

import contextlib
import math
from collections import OrderedDict

import numpy as np

from .. import obs
from .distance import _EPS, default_exclusion, znorm_subsequences
from .distance import nearest_neighbor_distances as _reference_nn_distances

__all__ = [
    "DISCORD_MODES",
    "set_discord_mode",
    "get_discord_mode",
    "discord_mode",
    "default_exclusion",
    "SeriesContext",
    "as_context",
    "snap_argmax",
    "correct_tiny_distances",
    "distance_profiles",
    "nn_profile",
    "nearest_neighbor_distances",
]

DISCORD_MODES = ("auto", "blocked", "fft", "reference")
_DISCORD_MODE = "auto"

# ``auto`` switches to the FFT path only when a blocked GEMM row costs
# clearly more than two length-n transforms: very long subsequences over
# large subsequence counts.  Everything in the paper's regime (padded
# MERLIN regions, UCR-scale series) stays on the blocked path.
AUTO_FFT_MIN_LENGTH = 256
AUTO_FFT_MIN_COUNT = 4096

# Prefix-sum variance is recomputed exactly (two-pass) for windows where
# cancellation could dominate: var <= VAR_RTOL * (E[x^2] + 1).  The
# threshold is deliberately wide: the cumsum's absolute error (~eps * n
# * E[x^2]) becomes a *relative* std error of eps*n*E[x^2]/(2*var), and
# a relative std error rescales every z value, so the 1e-9 distance
# contract needs var to dominate the cumsum error by ~1e6.  Flagged rows
# cost one exact two-pass each — only low-variance windows pay it.
VAR_RTOL = 1e-3

# Discord selections treat distances within this of the maximum as tied
# and pick the smallest index (see :func:`snap_argmax`).
TIE_TOL = 1e-9

# Squared distances below this are recomputed with the exact
# subtract-and-square formula: the dot-product identity's absolute error
# (~eps * l) turns into a distance error of eps*l/(2d), which breaks the
# 1e-9 contract precisely when d is tiny — near-duplicate subsequences.
# Entries this small are rare (their distance is < 0.01), so the exact
# pass costs nothing in the common case.
TINY_SQ = 1e-4


def snap_argmax(values: np.ndarray) -> int:
    """Argmax with a deterministic tie-break: smallest index within
    :data:`TIE_TOL` of the maximum.

    A discord's nearest-neighbor pair is *mutual* whenever nothing sits
    closer to either end, so the top two profile values are often equal
    in real arithmetic — and each kernel mode's distinct rounding would
    then pick a different winner under a plain ``argmax``.  Snapping the
    selection makes every mode (the reference oracle included) return
    the same discord index, which is the equivalence contract the tests
    and benchmark gate assert.
    """
    values = np.asarray(values)
    best = values.max()
    return int(np.flatnonzero(values >= best - TIE_TOL)[0])


def set_discord_mode(mode: str) -> str:
    """Select the discord kernel implementation; returns the previous mode.

    ``"auto"`` (default) runs blocked GEMM sweeps, switching to the FFT
    path for very long subsequences; ``"blocked"``, ``"fft"`` and
    ``"reference"`` force one implementation (tests and benchmarks).
    """
    global _DISCORD_MODE
    if mode not in DISCORD_MODES:
        raise ValueError(f"unknown discord mode {mode!r}; choose from {DISCORD_MODES}")
    previous = _DISCORD_MODE
    _DISCORD_MODE = mode
    return previous


def get_discord_mode() -> str:
    """Return the active discord kernel mode."""
    return _DISCORD_MODE


@contextlib.contextmanager
def discord_mode(mode: str):
    """Context manager pinning the discord kernel implementation."""
    previous = set_discord_mode(mode)
    try:
        yield
    finally:
        set_discord_mode(previous)


def resolve_mode(mode: str | None, length: int, count: int) -> str:
    """Collapse ``None``/``"auto"`` to a concrete kernel choice."""
    if mode is None:
        mode = _DISCORD_MODE
    elif mode not in DISCORD_MODES:
        raise ValueError(f"unknown discord mode {mode!r}; choose from {DISCORD_MODES}")
    if mode == "auto":
        if length >= AUTO_FFT_MIN_LENGTH and count >= AUTO_FFT_MIN_COUNT:
            return "fft"
        return "blocked"
    return mode


class SeriesContext:
    """Per-series moment/FFT caches shared across lengths and algorithms.

    Construction is O(n): two prefix sums.  ``moments(length)`` then
    derives every subsequence's mean/std in O(n) per length — no
    re-normalization of the subsequence matrix — and ``znorm(length)``
    materializes the z-normed matrix only when a blocked sweep needs it,
    keeping the most recent :data:`ZNORM_CACHE` lengths alive so DRAG
    retries and MERLIN's per-length work reuse one matrix.
    """

    ZNORM_CACHE = 2

    def __init__(self, series: np.ndarray) -> None:
        series = np.ascontiguousarray(np.asarray(series, dtype=np.float64))
        if series.ndim != 1:
            raise ValueError("SeriesContext expects a 1-D series")
        self.series = series
        n = len(series)
        self._cum = np.concatenate(([0.0], np.cumsum(series)))
        self._cum2 = np.concatenate(([0.0], np.cumsum(series * series)))
        self._meansq = float(self._cum2[-1] / n) if n else 0.0
        self._n_fft = 1 << max(n - 1, 1).bit_length()
        # Smallest window std the fft path can z-normalize without the
        # transform's absolute dot error (~eps * n_fft * E[x^2]) blowing
        # past the 1e-9 distance contract after the 1/(std_i*std_j)
        # divide.
        self._fft_std_floor = math.sqrt(
            np.finfo(np.float64).eps * self._n_fft * (self._meansq + 1.0) / 1e-10
        )
        self._moments: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._znorm: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._series_rfft: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.series)

    def count(self, length: int) -> int:
        """Number of subsequences at ``length`` (raises if too long)."""
        if length > len(self.series):
            raise ValueError("subsequence length exceeds series length")
        if length < 1:
            raise ValueError("subsequence length must be positive")
        return len(self.series) - length + 1

    def moments(self, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-subsequence ``(mean, std)`` at ``length``, from prefix sums.

        Windows whose prefix-sum variance is cancellation-prone are
        recomputed with the exact two-pass formula so degenerate
        (constant) subsequences match ``znorm_subsequences`` exactly.
        """
        cached = self._moments.get(length)
        if cached is not None:
            obs.incr("discord.kernels.moments_reuse")
            return cached
        count = self.count(length)
        s = self._cum[length:] - self._cum[:-length]
        s2 = self._cum2[length:] - self._cum2[:-length]
        mean = s / length
        meansq = s2 / length
        var = meansq - mean * mean
        suspect = var <= VAR_RTOL * (np.abs(meansq) + 1.0)
        np.maximum(var, 0.0, out=var)
        std = np.sqrt(var)
        if suspect.any():
            subs = np.lib.stride_tricks.sliding_window_view(self.series, length)
            rows = np.flatnonzero(suspect[:count])
            window = subs[rows]
            mean[rows] = window.mean(axis=1)
            std[rows] = window.std(axis=1)
        result = (mean[:count], std[:count])
        self._moments[length] = result
        return result

    def _znorm_entry(self, length: int) -> tuple[np.ndarray, np.ndarray]:
        entry = self._znorm.get(length)
        if entry is not None:
            self._znorm.move_to_end(length)
            obs.incr("discord.kernels.znorm_reuse")
            return entry
        count = self.count(length)
        mean, std = self.moments(length)
        subs = np.lib.stride_tricks.sliding_window_view(self.series, length)[:count]
        z = (subs - mean[:, None]) / np.maximum(std, _EPS)[:, None]
        sq_norms = np.einsum("ij,ij->i", z, z)
        self._znorm[length] = (z, sq_norms)
        while len(self._znorm) > self.ZNORM_CACHE:
            self._znorm.popitem(last=False)
        return z, sq_norms

    def znorm(self, length: int) -> np.ndarray:
        """Z-normed subsequence matrix at ``length`` (LRU-cached)."""
        return self._znorm_entry(length)[0]

    def znorm_sq_norms(self, length: int) -> np.ndarray:
        """``||z_i||^2`` per subsequence, cached alongside the z matrix."""
        return self._znorm_entry(length)[1]

    def series_rfft(self) -> np.ndarray:
        """rFFT of the zero-padded series, computed once per context."""
        if self._series_rfft is None:
            self._series_rfft = np.fft.rfft(self.series, n=self._n_fft)
        return self._series_rfft

    def sliding_dots(self, indices: np.ndarray, length: int) -> np.ndarray:
        """Raw sliding dot products of query subsequences vs the series.

        ``out[q, j] = sum_k series[indices[q] + k] * series[j + k]`` for
        every lag ``j``, via one cached series rFFT plus a batched query
        rFFT — O(q * n log n) regardless of ``length``.
        """
        count = self.count(length)
        subs = np.lib.stride_tricks.sliding_window_view(self.series, length)
        queries = subs[np.asarray(indices, dtype=np.int64)]
        spectra = np.fft.rfft(queries, n=self._n_fft, axis=1)
        corr = np.fft.irfft(
            self.series_rfft()[None, :] * np.conj(spectra), n=self._n_fft, axis=1
        )
        return corr[:, :count]

    def fft_safe(self, length: int) -> bool:
        """Whether every window's std clears the fft-mode error floor."""
        _, std = self.moments(length)
        return bool((std >= self._fft_std_floor).all())


def as_context(series: np.ndarray, ctx: SeriesContext | None = None) -> SeriesContext:
    """Reuse ``ctx`` when given, else build a fresh one for ``series``."""
    if ctx is not None:
        return ctx
    return SeriesContext(series)


def correct_tiny_distances(
    ctx: SeriesContext, length: int, indices: np.ndarray, sq: np.ndarray
) -> None:
    """Recompute entries of ``sq`` below :data:`TINY_SQ` exactly, in place.

    ``sq[q, j]`` must hold squared z-norm distances from subsequence
    ``indices[q]`` to subsequence ``j``.  The recomputed entries use the
    same subtract-and-square arithmetic as the reference oracle, so tiny
    distances (near-duplicate subsequences) match it bitwise.  Call
    *after* masking the trivial band — overlapping neighbors are near
    duplicates by construction and would otherwise all be recomputed.
    """
    rows, cols = np.nonzero(sq < TINY_SQ)
    if rows.size == 0:
        return
    subs = np.lib.stride_tricks.sliding_window_view(ctx.series, length)
    wi = subs[np.asarray(indices, dtype=np.int64)[rows]]
    wj = subs[cols]
    zi = (wi - wi.mean(axis=1, keepdims=True)) / np.maximum(
        wi.std(axis=1, keepdims=True), _EPS
    )
    zj = (wj - wj.mean(axis=1, keepdims=True)) / np.maximum(
        wj.std(axis=1, keepdims=True), _EPS
    )
    sq[rows, cols] = ((zi - zj) ** 2).sum(axis=1)
    obs.incr("discord.kernels.tiny_recomputes", int(rows.size))


def distance_profiles(
    ctx: SeriesContext,
    length: int,
    indices: np.ndarray,
    mode: str | None = None,
) -> np.ndarray:
    """Squared z-norm distances from each query subsequence to all others.

    Returns a ``(len(indices), count)`` matrix, clamped at zero.  No
    exclusion zone is applied — callers mask their own trivial-match
    band.  ``"reference"`` resolves to the blocked path: the reference
    oracles live at the algorithm level (the scalar loops kept verbatim
    in each module), not down here.
    """
    indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
    count = ctx.count(length)
    mode = resolve_mode(mode, length, count)
    if mode == "reference":
        mode = "blocked"
    if mode == "fft" and not ctx.fft_safe(length):
        obs.incr("discord.kernels.fft_fallbacks")
        mode = "blocked"
    if mode == "fft":
        mean, std = ctx.moments(length)
        stdf = np.maximum(std, _EPS)
        # ||z_i||^2 = l * (std_i / max(std_i, eps))^2 — exactly l for
        # any window that was not floored.
        sq_norms = length * np.where(std >= _EPS, 1.0, (std / _EPS) ** 2)
        dots = ctx.sliding_dots(indices, length)
        zdots = (dots - length * mean[indices][:, None] * mean[None, :]) / (
            stdf[indices][:, None] * stdf[None, :]
        )
        sq = sq_norms[indices][:, None] + sq_norms[None, :] - 2.0 * zdots
    else:
        z = ctx.znorm(length)
        sq_norms = ctx.znorm_sq_norms(length)
        sq = (
            sq_norms[indices][:, None]
            + sq_norms[None, :]
            - 2.0 * (z[indices] @ z.T)
        )
    np.maximum(sq, 0.0, out=sq)
    obs.incr(f"discord.kernels.profiles.{mode}")
    return sq


def nn_profile(
    ctx: SeriesContext,
    length: int,
    exclusion: int,
    chunk: int = 512,
    mode: str | None = None,
    want_indices: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Exact nearest-non-trivial-neighbor profile at ``length``.

    Rows whose every pair falls inside the exclusion zone are ``inf``
    (the short-series contract of
    :func:`repro.discord.distance.nearest_neighbor_distances`, preserved
    in every mode).  With ``want_indices``, also returns each row's
    nearest-neighbor start index (undefined — still returned — for
    ``inf`` rows, matching ``matrix_profile``'s historical behavior).
    """
    count = ctx.count(length)
    mode = resolve_mode(mode, length, count)
    if mode == "reference" and not want_indices:
        profile = _reference_nn_distances(
            ctx.series, length, exclusion=exclusion, chunk=chunk
        )
        obs.incr("discord.kernels.nn_profile.reference")
        return profile, None
    if mode == "reference":
        # Verbatim matrix-profile reference loop (repro.discord.
        # matrix_profile pre-kernels), kept as the with-indices oracle.
        z = znorm_subsequences(ctx.series, length)
        norms = (z**2).sum(axis=1)
        profile = np.empty(count)
        nearest_all = np.empty(count, dtype=np.int64)
        columns = np.arange(count)
        for start in range(0, count, chunk):
            stop = min(start + chunk, count)
            dots = z[start:stop] @ z.T
            sq = norms[start:stop, None] + norms[None, :] - 2.0 * dots
            rows = np.arange(start, stop)
            band = np.abs(rows[:, None] - columns[None, :]) < exclusion
            sq[band] = np.inf
            nearest = sq.argmin(axis=1)
            nearest_all[start:stop] = nearest
            profile[start:stop] = np.sqrt(
                np.maximum(sq[np.arange(stop - start), nearest], 0.0)
            )
        obs.incr("discord.kernels.nn_profile.reference")
        return profile, nearest_all
    profile = np.empty(count)
    nearest_all = np.empty(count, dtype=np.int64) if want_indices else None
    columns = np.arange(count)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        rows = np.arange(start, stop)
        sq = distance_profiles(ctx, length, rows, mode=mode)
        band = np.abs(rows[:, None] - columns[None, :]) < exclusion
        sq[band] = np.inf
        correct_tiny_distances(ctx, length, rows, sq)
        nearest = sq.argmin(axis=1)
        if nearest_all is not None:
            nearest_all[start:stop] = nearest
        profile[start:stop] = np.sqrt(
            np.maximum(sq[np.arange(stop - start), nearest], 0.0)
        )
    obs.incr(f"discord.kernels.nn_profile.{mode}")
    return profile, nearest_all


def nearest_neighbor_distances(
    series: np.ndarray,
    length: int,
    exclusion: int | None = None,
    chunk: int = 512,
    *,
    ctx: SeriesContext | None = None,
    mode: str | None = None,
) -> np.ndarray:
    """Mode-dispatching nearest-neighbor profile (the package entry point).

    Same contract as :func:`repro.discord.distance.
    nearest_neighbor_distances` (which remains the reference oracle):
    one distance per subsequence, ``inf`` where the exclusion zone bans
    every pair.  ``exclusion`` defaults to the matrix-profile convention
    via :func:`default_exclusion` — explicitly, so the zone each
    algorithm runs under is auditable in one place.  Pass a shared
    :class:`SeriesContext` to reuse moments/FFT caches across calls.
    """
    if exclusion is None:
        exclusion = default_exclusion(length, "profile")
    resolved = resolve_mode(mode, length, max(len(np.asarray(series)) - length + 1, 0))
    if resolved == "reference" and ctx is None:
        return _reference_nn_distances(series, length, exclusion=exclusion, chunk=chunk)
    context = as_context(series, ctx)
    profile, _ = nn_profile(
        context, length, exclusion, chunk=chunk, mode=resolved
    )
    return profile
