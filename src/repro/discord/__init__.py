"""Discord discovery algorithms: brute force, DRAG, MERLIN, MERLIN++,
and the matrix profile — all built on the shared chunked distance-kernel
layer in :mod:`repro.discord.kernels` (``set_discord_mode`` selects the
implementation family; ``reference`` restores the original scalar
loops)."""

from .brute import Discord, brute_force_discord
from .distance import (
    default_exclusion,
    trivial_match_mask,
    znorm_distance,
    znorm_subsequences,
)
from .damp import DampResult, damp
from .drag import drag
from .kernels import (
    DISCORD_MODES,
    SeriesContext,
    discord_mode,
    get_discord_mode,
    nearest_neighbor_distances,
    set_discord_mode,
)
from .matrix_profile import MatrixProfile, matrix_profile
from .motifs import Motif, top_k_motifs
from .merlin import MerlinResult, merlin
from .merlinpp import merlinpp
from .streaming import StreamingDiscordDetector, left_matrix_profile
from .topk import top_k_discords

__all__ = [
    "StreamingDiscordDetector",
    "left_matrix_profile",
    "top_k_discords",
    "Motif",
    "top_k_motifs",
    "DampResult",
    "damp",
    "Discord",
    "brute_force_discord",
    "DISCORD_MODES",
    "SeriesContext",
    "discord_mode",
    "get_discord_mode",
    "set_discord_mode",
    "default_exclusion",
    "nearest_neighbor_distances",
    "trivial_match_mask",
    "znorm_distance",
    "znorm_subsequences",
    "drag",
    "MatrixProfile",
    "matrix_profile",
    "MerlinResult",
    "merlin",
    "merlinpp",
]
