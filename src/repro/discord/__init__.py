"""Discord discovery algorithms: brute force, DRAG, MERLIN, MERLIN++,
and the matrix profile."""

from .brute import Discord, brute_force_discord
from .distance import (
    nearest_neighbor_distances,
    trivial_match_mask,
    znorm_distance,
    znorm_subsequences,
)
from .damp import DampResult, damp
from .drag import drag
from .matrix_profile import MatrixProfile, matrix_profile
from .motifs import Motif, top_k_motifs
from .merlin import MerlinResult, merlin
from .merlinpp import merlinpp
from .streaming import StreamingDiscordDetector, left_matrix_profile
from .topk import top_k_discords

__all__ = [
    "StreamingDiscordDetector",
    "left_matrix_profile",
    "top_k_discords",
    "Motif",
    "top_k_motifs",
    "DampResult",
    "damp",
    "Discord",
    "brute_force_discord",
    "nearest_neighbor_distances",
    "trivial_match_mask",
    "znorm_distance",
    "znorm_subsequences",
    "drag",
    "MatrixProfile",
    "matrix_profile",
    "MerlinResult",
    "merlin",
    "merlinpp",
]
