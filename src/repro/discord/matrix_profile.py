"""Matrix profile (nearest-neighbor distance profile) for time series.

Related discord machinery the paper cites ([27], [28]): the profile's
maximum is the top discord, its minimum a motif.  Computed exactly with
chunked matrix products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import znorm_subsequences

__all__ = ["MatrixProfile", "matrix_profile"]


@dataclass(frozen=True)
class MatrixProfile:
    """Distance profile and nearest-neighbor index per subsequence."""

    profile: np.ndarray
    indices: np.ndarray
    length: int

    def discord_index(self) -> int:
        """Start of the top discord (largest NN distance)."""
        finite = np.where(np.isfinite(self.profile), self.profile, -np.inf)
        return int(np.argmax(finite))

    def motif_pair(self) -> tuple[int, int]:
        """Start indices of the closest non-trivial pair."""
        finite = np.where(np.isfinite(self.profile), self.profile, np.inf)
        i = int(np.argmin(finite))
        return i, int(self.indices[i])


def matrix_profile(
    series: np.ndarray,
    length: int,
    exclusion: int | None = None,
    chunk: int = 512,
) -> MatrixProfile:
    """Exact matrix profile of ``series`` at subsequence ``length``."""
    z = znorm_subsequences(series, length)
    count = len(z)
    if exclusion is None:
        exclusion = max(length // 2, 1)
    norms = (z**2).sum(axis=1)
    profile = np.empty(count)
    indices = np.empty(count, dtype=np.int64)
    columns = np.arange(count)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        dots = z[start:stop] @ z.T
        sq = norms[start:stop, None] + norms[None, :] - 2.0 * dots
        rows = np.arange(start, stop)
        band = np.abs(rows[:, None] - columns[None, :]) < exclusion
        sq[band] = np.inf
        nearest = sq.argmin(axis=1)
        indices[start:stop] = nearest
        profile[start:stop] = np.sqrt(np.maximum(sq[np.arange(stop - start), nearest], 0.0))
    return MatrixProfile(profile=profile, indices=indices, length=length)
