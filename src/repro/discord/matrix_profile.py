"""Matrix profile (nearest-neighbor distance profile) for time series.

Related discord machinery the paper cites ([27], [28]): the profile's
maximum is the top discord, its minimum a motif.  Computed exactly
through the shared kernel layer (:func:`repro.discord.kernels.
nn_profile`), which keeps the original chunked loop as the
``reference``-mode oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import SeriesContext, as_context, default_exclusion, nn_profile

__all__ = ["MatrixProfile", "matrix_profile"]


@dataclass(frozen=True)
class MatrixProfile:
    """Distance profile and nearest-neighbor index per subsequence."""

    profile: np.ndarray
    indices: np.ndarray
    length: int

    def discord_index(self) -> int:
        """Start of the top discord (largest NN distance)."""
        finite = np.where(np.isfinite(self.profile), self.profile, -np.inf)
        return int(np.argmax(finite))

    def motif_pair(self) -> tuple[int, int]:
        """Start indices of the closest non-trivial pair."""
        finite = np.where(np.isfinite(self.profile), self.profile, np.inf)
        i = int(np.argmin(finite))
        return i, int(self.indices[i])


def matrix_profile(
    series: np.ndarray,
    length: int,
    exclusion: int | None = None,
    chunk: int = 512,
    *,
    ctx: SeriesContext | None = None,
) -> MatrixProfile:
    """Exact matrix profile of ``series`` at subsequence ``length``.

    ``exclusion`` defaults to the matrix-profile convention,
    ``default_exclusion(length, "profile")`` (``length // 2``).
    """
    if exclusion is None:
        exclusion = default_exclusion(length, "profile")
    context = as_context(series, ctx)
    profile, indices = nn_profile(
        context, length, exclusion, chunk=chunk, want_indices=True
    )
    return MatrixProfile(profile=profile, indices=indices, length=length)
