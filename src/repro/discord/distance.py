"""Scalar distance primitives for discord discovery.

All discord algorithms in this package operate on z-normalized Euclidean
distance between subsequences, the convention of the matrix-profile /
MERLIN literature.  For z-normalized vectors of length ``l`` the squared
distance reduces to ``2l - 2 * dot``, which lets nearest-neighbor scans
run as matrix products.

This module is the *bottom* of the discord sublayer stack: it holds the
z-normalization helpers, the one documented home for the exclusion-zone
defaults (:func:`default_exclusion`), and the original
:func:`nearest_neighbor_distances` implementation, kept verbatim as the
equivalence oracle for the batched kernels in
:mod:`repro.discord.kernels`.  New code should call the mode-dispatching
``nearest_neighbor_distances`` re-exported from :mod:`repro.discord`
(defined in ``kernels``); importing it from here always gets the
reference path.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "znorm_subsequences",
    "znorm_distance",
    "nearest_neighbor_distances",
    "trivial_match_mask",
    "default_exclusion",
]

_EPS = 1e-8


def default_exclusion(length: int, convention: str = "discord") -> int:
    """The documented exclusion-zone defaults, in one place.

    Two conventions coexist in the literature and in this package; the
    kernel layer and every algorithm resolve their default zone through
    this function so the choice is explicit at each call site:

    - ``"discord"`` — zone equals the subsequence ``length``: neighbors
      must be completely non-overlapping.  MERLIN's convention (Nakamura
      et al., ICDM 2020), used by DRAG, MERLIN/MERLIN++ and
      ``top_k_discords``.
    - ``"profile"`` — zone is ``max(length // 2, 1)``: the common
      matrix-profile convention, used by ``nearest_neighbor_distances``,
      ``matrix_profile`` and ``top_k_motifs``.
    """
    if convention == "discord":
        return max(int(length), 1)
    if convention == "profile":
        return max(length // 2, 1)
    raise ValueError(
        f"unknown exclusion convention {convention!r}; choose 'discord' or 'profile'"
    )


def znorm_subsequences(series: np.ndarray, length: int) -> np.ndarray:
    """All z-normalized subsequences of ``series`` with the given length.

    Returns an array of shape ``(len(series) - length + 1, length)``.
    Constant subsequences map to zero vectors (distance to anything
    z-normalized is then ``sqrt(2l)``, a sane 'featureless' placement).
    """
    series = np.asarray(series, dtype=np.float64)
    if length > len(series):
        raise ValueError("subsequence length exceeds series length")
    subs = np.lib.stride_tricks.sliding_window_view(series, length)
    mean = subs.mean(axis=1, keepdims=True)
    std = subs.std(axis=1, keepdims=True)
    return (subs - mean) / np.maximum(std, _EPS)


def znorm_distance(a: np.ndarray, b: np.ndarray) -> float:
    """z-normalized Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    za = (a - a.mean()) / max(a.std(), _EPS)
    zb = (b - b.mean()) / max(b.std(), _EPS)
    return float(np.linalg.norm(za - zb))


def trivial_match_mask(count: int, exclusion: int) -> np.ndarray:
    """Boolean ``(count, count)`` mask of self/trivial matches to ignore.

    Overlapping subsequences trivially match; the standard exclusion zone
    bans pairs closer than ``exclusion`` positions apart.
    """
    idx = np.arange(count)
    return np.abs(idx[:, None] - idx[None, :]) < exclusion


def nearest_neighbor_distances(
    series: np.ndarray,
    length: int,
    exclusion: int | None = None,
    chunk: int = 512,
) -> np.ndarray:
    """Exact nearest-non-trivial-neighbor distance for every subsequence.

    This is the matrix profile of ``series`` at the given length,
    computed in chunks so memory stays ``O(chunk * count)``.

    Parameters
    ----------
    exclusion:
        Half-width of the trivial-match zone; defaults to
        ``default_exclusion(length, "profile")`` (``length // 2``, the
        common matrix-profile convention).

    Returns
    -------
    numpy.ndarray
        One distance per subsequence.  **Contract:** a row whose every
        pair falls inside the exclusion zone — possible whenever
        ``count <= 2 * exclusion - 1``, i.e. a short series under a wide
        zone — has *no* non-trivial neighbor and its entry is ``inf``,
        not an error.  Callers that need a finite profile must filter
        with ``np.isfinite`` (see :func:`~repro.discord.brute.
        brute_force_discord`, which raises when nothing is finite).
    """
    z = znorm_subsequences(series, length)
    count = len(z)
    if exclusion is None:
        exclusion = default_exclusion(length, "profile")
    norms = (z**2).sum(axis=1)
    result = np.empty(count)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        # Squared distances via the dot-product identity.
        dots = z[start:stop] @ z.T
        sq = norms[start:stop, None] + norms[None, :] - 2.0 * dots
        rows = np.arange(start, stop)
        band = np.abs(rows[:, None] - np.arange(count)[None, :]) < exclusion
        sq[band] = np.inf
        result[start:stop] = np.sqrt(np.maximum(sq.min(axis=1), 0.0))
    return result
