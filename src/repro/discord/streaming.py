"""Streaming discord detection via the left matrix profile (DAMP-style).

Discord algorithms in this package are batch; real-time monitoring needs
the *left* matrix profile: each subsequence's nearest neighbor among
subsequences that END before it starts.  A new point's left-NN distance
can be computed as data arrives, so the maximum-so-far marks the
emerging discord — the core idea behind the DAMP family of online
detectors the paper's Sec. V positions TriAD against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import znorm_subsequences
from .kernels import SeriesContext, as_context, resolve_mode

__all__ = ["left_matrix_profile", "StreamingDiscordDetector"]


def left_matrix_profile(
    series: np.ndarray,
    length: int,
    chunk: int = 256,
    *,
    ctx: SeriesContext | None = None,
) -> np.ndarray:
    """Exact left matrix profile.

    ``profile[i]`` is the distance from subsequence ``i`` to its nearest
    neighbor among subsequences ``j`` with ``j + length <= i`` (fully in
    the past).  Entries with no eligible neighbor are ``inf``.

    Computed in chunks of ``chunk`` query rows: each chunk's distances to
    every eligible past subsequence are a single matrix product via the
    dot-product identity ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b``, with
    the not-yet-past columns masked per row.  Memory stays
    ``O(chunk * count)`` and the interpreter loop runs ``count / chunk``
    times instead of ``count`` times.  Under the kernel modes the z-norm
    matrix and squared norms come from the shared (optionally caller-
    provided) :class:`~repro.discord.kernels.SeriesContext`; the
    ``reference`` mode recomputes them locally, as this function always
    did.
    """
    mode = resolve_mode(None, length, max(len(np.asarray(series)) - length + 1, 0))
    if mode == "reference":
        z = znorm_subsequences(series, length)
        norms = (z**2).sum(axis=1)
    else:
        context = as_context(series, ctx)
        z = context.znorm(length)
        norms = context.znorm_sq_norms(length)
    count = len(z)
    profile = np.full(count, np.inf)
    for start in range(length, count, chunk):
        stop = min(start + chunk, count)
        # Row i may match columns j <= i - length; the widest row in this
        # chunk (i = stop - 1) reaches column stop - 1 - length.
        width = stop - length
        sq = (
            norms[start:stop, None]
            + norms[None, :width]
            - 2.0 * (z[start:stop] @ z[:width].T)
        )
        rows = np.arange(start, stop)
        future = np.arange(width)[None, :] > (rows[:, None] - length)
        sq[future] = np.inf
        profile[start:stop] = np.sqrt(np.maximum(sq.min(axis=1), 0.0))
    return profile


@dataclass
class _Alert:
    """An emitted streaming alert."""

    index: int
    distance: float


#: Default trailing left-NN distance window for the alert-threshold
#: baseline (see ``StreamingDiscordDetector``'s ``baseline_window``).
BASELINE_WINDOW = 512


class StreamingDiscordDetector:
    """Online discord detector over an unbounded stream.

    Feed points one at a time with :meth:`update`; once ``warmup``
    subsequences have been seen, every new subsequence's left-NN distance
    is compared against a trailing mean + ``sigma`` * std threshold, and
    crossings are reported as alerts.

    Example
    -------
    >>> detector = StreamingDiscordDetector(length=8, warmup=20)
    >>> import numpy as np
    >>> for value in np.sin(np.arange(200) / 3.0):
    ...     _ = detector.update(value)
    """

    def __init__(
        self,
        length: int,
        warmup: int = 32,
        sigma: float = 4.0,
        min_distance: float = 0.5,
        max_history: int | None = None,
        baseline_window: int = BASELINE_WINDOW,
    ) -> None:
        if length < 2:
            raise ValueError("subsequence length must be >= 2")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if baseline_window < length:
            raise ValueError(
                "baseline_window must be >= the subsequence length "
                f"(got {baseline_window} < {length})"
            )
        self.length = length
        self.warmup = warmup
        self.sigma = sigma
        # Absolute floor on the alert threshold: near-exact repeats of a
        # clean periodic signal yield ~zero distances and ~zero variance,
        # which would otherwise make any numerical jitter alert.
        self.min_distance = min_distance
        # ``max_history`` bounds the pool of past z-normed subsequences a
        # new window is matched against (None = unbounded pool).  The
        # threshold baseline is bounded separately and unconditionally:
        # only the trailing ``baseline_window`` left-NN distances are
        # retained, so memory stays O(max_history + baseline_window)
        # even on an infinite stream.
        self.max_history = max_history
        self.baseline_window = int(baseline_window)
        self._buffer: list[float] = []
        self._history: list[np.ndarray] = []  # z-normed past subsequences
        self._distances: list[float] = []  # trailing window only (see above)
        self._distances_seen = 0  # total distances ever recorded
        self.alerts: list[_Alert] = []
        self._count = 0

    @property
    def points_seen(self) -> int:
        return self._count

    def _znorm(self, window: np.ndarray) -> np.ndarray:
        std = window.std()
        if std < 1e-8:
            return np.zeros_like(window)
        return (window - window.mean()) / std

    def update(self, value: float) -> _Alert | None:
        """Ingest one point; returns an alert if a discord just emerged."""
        self._count += 1
        self._buffer.append(float(value))
        if len(self._buffer) < self.length:
            return None
        window = np.asarray(self._buffer[-self.length :])
        z = self._znorm(window)

        alert = None
        # Compare against fully-past subsequences only.  Distances are
        # recorded only once the past pool is reasonably large — the
        # first few left-NN distances are inflated simply because there
        # is almost nothing to match against, and would poison the
        # baseline statistics.
        past = self._history[: max(len(self._history) - self.length + 1, 0)]
        if len(past) >= self.warmup:
            matrix = np.asarray(past)
            sq = ((matrix - z) ** 2).sum(axis=1)
            distance = float(np.sqrt(max(sq.min(), 0.0)))
            self._distances.append(distance)
            self._distances_seen += 1
            # Keep one extra entry so the baseline below can exclude the
            # distance just appended and still span baseline_window.
            if len(self._distances) > self.baseline_window + 1:
                del self._distances[: -(self.baseline_window + 1)]
            if self._distances_seen > self.warmup:
                baseline = np.asarray(self._distances[:-1][-self.baseline_window :])
                threshold = max(
                    baseline.mean() + self.sigma * baseline.std(), self.min_distance
                )
                if distance > threshold:
                    alert = _Alert(index=self._count - self.length, distance=distance)
                    self.alerts.append(alert)

        self._history.append(z)
        if self.max_history is not None and len(self._history) > self.max_history:
            self._history.pop(0)
        if len(self._buffer) > self.length:
            self._buffer.pop(0)
        return alert
