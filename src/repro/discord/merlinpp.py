"""MERLIN++ — MERLIN accelerated with a metric-index nearest-neighbor
search (Nakamura, Mercer, Imamura & Keogh, DAMI 2023).

The published MERLIN++ replaces DRAG's linear scans with Orchard's
algorithm.  We implement the same idea with a pivot-based triangle-
inequality index: for each length, distances from every z-normalized
subsequence to a pivot are computed once; candidate refinement then
visits neighbors in ascending lower-bound order
``|d(pivot, j) - d(pivot, c)| <= d(c, j)`` and abandons as soon as the
bound exceeds the best distance found, skipping most exact distance
computations.  Results are exact and match :func:`repro.discord.merlin`.
"""

from __future__ import annotations

import numpy as np

from .brute import Discord
from .distance import znorm_subsequences
from .kernels import SeriesContext, get_discord_mode
from .merlin import MerlinResult

__all__ = ["merlinpp"]


def _refine_candidate(
    z: np.ndarray,
    c: int,
    pivot_distances: np.ndarray,
    order: np.ndarray,
    exclusion: int,
    block: int = 256,
) -> float:
    """Exact NN distance of candidate ``c`` using pivot lower bounds."""
    bounds = np.abs(pivot_distances - pivot_distances[c])
    # Visit subsequences by ascending lower bound; a block whose smallest
    # bound already exceeds the best exact distance cannot improve it.
    ranked = order[np.argsort(bounds[order], kind="stable")]
    best_sq = np.inf
    for start in range(0, len(ranked), block):
        chunk = ranked[start : start + block]
        if bounds[chunk[0]] ** 2 >= best_sq:
            break
        chunk = chunk[np.abs(chunk - c) >= exclusion]
        if chunk.size == 0:
            continue
        sq = ((z[chunk] - z[c]) ** 2).sum(axis=1)
        best_sq = min(best_sq, float(sq.min()))
    return float(np.sqrt(max(best_sq, 0.0))) if np.isfinite(best_sq) else np.inf


def merlinpp(
    series: np.ndarray,
    min_length: int,
    max_length: int,
    step: int = 1,
    exclusion_factor: float = 1.0,
) -> MerlinResult:
    """MERLIN++-style exact variable-length discord discovery.

    Same output contract as :func:`repro.discord.merlin.merlin`; the
    per-length search runs candidate gathering with an adaptive ``r``
    seeded from previous lengths, then pivot-indexed refinement.
    """
    series = np.asarray(series, dtype=np.float64)
    lengths = [
        l for l in range(min_length, max_length + 1, step) if 2 * l <= len(series)
    ]
    result = MerlinResult()
    # Share prefix-sum moments across the length sweep; reference mode
    # keeps the original per-length normalization.
    ctx = None if get_discord_mode() == "reference" else SeriesContext(series)
    recent_norm: list[float] = []
    for position, length in enumerate(lengths):
        exclusion = max(int(round(exclusion_factor * length)), 1)
        z = znorm_subsequences(series, length) if ctx is None else ctx.znorm(length)
        count = len(z)
        if count <= exclusion:
            continue

        # Pivot index: one exact distance column reused for all pruning.
        pivot = 0
        pivot_sq = ((z - z[pivot]) ** 2).sum(axis=1)
        pivot_distances = np.sqrt(np.maximum(pivot_sq, 0.0))
        order = np.arange(count)

        scale = float(np.sqrt(length))
        if position == 0:
            r = 2.0 * scale
        elif position < 5:
            r = 0.99 * recent_norm[-1] * scale
        else:
            window = np.asarray(recent_norm[-5:])
            r = float(window.mean() - 2.0 * window.std()) * scale
        r = max(r, 1e-6)

        found: Discord | None = None
        while found is None and r >= 1e-9:
            # Candidate gathering with pivot pre-pruning: a subsequence
            # whose pivot distance differs from every candidate's by >= r
            # cannot be within r of any of them.
            candidates: list[int] = []
            for j in range(count):
                survives = True
                if candidates:
                    cand = np.asarray(candidates)
                    possible = np.abs(pivot_distances[cand] - pivot_distances[j]) < r
                    nontrivial = np.abs(cand - j) >= exclusion
                    check = cand[possible & nontrivial]
                    if check.size:
                        sq = ((z[check] - z[j]) ** 2).sum(axis=1)
                        hit = sq < r * r
                        if hit.any():
                            survives = False
                            eliminated = set(check[hit].tolist())
                            candidates = [c for c in candidates if c not in eliminated]
                if survives:
                    candidates.append(j)

            best: Discord | None = None
            for c in candidates:
                nn = _refine_candidate(z, c, pivot_distances, order, exclusion)
                if nn < r or not np.isfinite(nn):
                    continue
                if best is None or nn > best.distance:
                    best = Discord(index=int(c), length=length, distance=nn)
            if best is None:
                r *= 0.5 if position == 0 else 0.9
            else:
                found = best
        if found is None:
            continue
        result.discords.append(found)
        recent_norm.append(found.distance / scale)
    return result
