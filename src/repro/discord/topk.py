"""Top-K discord extraction.

The paper sets Z=1 deviant window per domain because each UCR test set
hides exactly one event; real deployments often want the K most unusual
non-overlapping subsequences.  This module generalizes the discord
machinery to K > 1.
"""

from __future__ import annotations

import numpy as np

from .brute import Discord
from .kernels import (
    SeriesContext,
    default_exclusion,
    nearest_neighbor_distances,
    snap_argmax,
)

__all__ = ["top_k_discords"]


def top_k_discords(
    series: np.ndarray,
    length: int,
    k: int,
    exclusion: int | None = None,
    suppression: int | None = None,
    *,
    ctx: SeriesContext | None = None,
) -> list[Discord]:
    """The ``k`` highest nearest-neighbor-distance subsequences, mutually
    non-overlapping.

    Candidates within ``suppression`` positions of an already-selected
    discord are suppressed (defaults to ``exclusion``), so the result is
    ``k`` distinct events rather than ``k`` offsets of the same one; use
    a larger ``suppression`` to keep whole event neighborhoods apart.
    ``exclusion`` defaults to the discord convention
    (``default_exclusion(length, "discord")``, i.e. the full length:
    neighbors must not overlap at all).

    Returns fewer than ``k`` discords when the series cannot host that
    many non-overlapping candidates.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if exclusion is None:
        exclusion = default_exclusion(length, "discord")
    if suppression is None:
        suppression = exclusion
    profile = nearest_neighbor_distances(
        series, length, exclusion=exclusion, ctx=ctx
    )
    available = np.isfinite(profile)
    scores = np.where(available, profile, -np.inf)

    found: list[Discord] = []
    for _ in range(k):
        index = snap_argmax(scores)
        if not np.isfinite(scores[index]) or scores[index] < 0:
            break
        found.append(Discord(index=index, length=length, distance=float(scores[index])))
        lo = max(index - suppression + 1, 0)
        hi = min(index + suppression, len(scores))
        scores[lo:hi] = -np.inf
    return found
