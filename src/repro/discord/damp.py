"""DAMP-style left-discord search (Lu et al., KDD 2022 lineage).

DAMP finds the subsequence with the largest *left* nearest-neighbor
distance (its neighbor must lie entirely in the past) without computing
the full left matrix profile: each subsequence searches backward in
doubling chunks and abandons as soon as it finds any past neighbor
closer than the best discord so far — that subsequence can no longer be
the discord, so its exact distance is irrelevant.

The returned discord is exact (verified against
:func:`repro.discord.streaming.left_matrix_profile` in the tests);
the profile it returns is an upper-bound profile whose maximum equals
the true maximum.

Under the kernel modes each backward block is scored as one matrix-vector
product against the cached z-norm matrix (``||a-b||^2 = ||a||^2 +
||b||^2 - 2 a.b``) instead of materializing ``block - z[i]``; the
doubling/early-abandon control flow — DAMP's actual contribution — is
unchanged, and ``distances_computed`` counts the same work either way.
``set_discord_mode("reference")`` restores the original subtract-and-
square loop verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .brute import Discord
from .distance import znorm_subsequences
from .kernels import SeriesContext, as_context, resolve_mode

__all__ = ["DampResult", "damp"]


@dataclass
class DampResult:
    """DAMP output: the exact left-discord and search statistics."""

    discord: Discord | None
    profile: np.ndarray  # upper bounds on left-NN distances
    distances_computed: int  # pairwise distances evaluated (work measure)


def damp(
    series: np.ndarray,
    length: int,
    train_size: int | None = None,
    initial_chunk: int | None = None,
    *,
    ctx: SeriesContext | None = None,
) -> DampResult:
    """Exact left-discord discovery with backward doubling search.

    Parameters
    ----------
    train_size:
        Number of leading points assumed normal; discord candidates
        start after it (default ``4 * length``).
    initial_chunk:
        First backward chunk size in subsequences (default ``2 * length``).
    ctx:
        Optional shared :class:`~repro.discord.kernels.SeriesContext`.
    """
    series = np.asarray(series, dtype=np.float64)
    mode = resolve_mode(None, length, max(len(series) - length + 1, 0))
    if mode == "reference":
        return _damp_reference(series, length, train_size, initial_chunk)

    context = as_context(series, ctx)
    z = context.znorm(length)
    sq_norms = context.znorm_sq_norms(length)
    count = context.count(length)
    if train_size is None:
        train_size = 4 * length
    start = max(train_size, length)
    if start >= count:
        return DampResult(discord=None, profile=np.zeros(0), distances_computed=0)
    if initial_chunk is None:
        initial_chunk = 2 * length

    profile = np.zeros(count)
    best_value = -np.inf
    best_index = -1
    work = 0

    for i in range(start, count):
        # Eligible past: subsequences ending before i starts.
        past_end = i - length + 1
        if past_end <= 0:
            continue
        best_here = np.inf
        chunk = min(initial_chunk, past_end)
        lo = past_end - chunk
        abandoned = False
        while True:
            block_lo = lo if lo > 0 else 0
            # One matvec per block instead of materializing block - z[i].
            dots = z[block_lo:past_end] @ z[i]
            sq = sq_norms[block_lo:past_end] + sq_norms[i] - 2.0 * dots
            work += past_end - block_lo
            best_here = min(best_here, float(np.sqrt(max(sq.min(), 0.0))))
            if best_here < best_value:
                # Cannot be the discord; record the bound and move on.
                abandoned = True
                break
            if lo == 0:
                break
            # Double the lookback.
            chunk *= 2
            past_end = lo
            lo = max(past_end - chunk, 0)
        profile[i] = best_here
        if not abandoned and best_here > best_value:
            best_value = best_here
            best_index = i

    discord = (
        Discord(index=best_index, length=length, distance=best_value)
        if best_index >= 0 and np.isfinite(best_value)
        else None
    )
    return DampResult(discord=discord, profile=profile, distances_computed=work)


def _damp_reference(
    series: np.ndarray,
    length: int,
    train_size: int | None,
    initial_chunk: int | None,
) -> DampResult:
    """The original DAMP loop, verbatim — the equivalence oracle."""
    z = znorm_subsequences(series, length)
    count = len(z)
    if train_size is None:
        train_size = 4 * length
    start = max(train_size, length)
    if start >= count:
        return DampResult(discord=None, profile=np.zeros(0), distances_computed=0)
    if initial_chunk is None:
        initial_chunk = 2 * length

    profile = np.zeros(count)
    best_value = -np.inf
    best_index = -1
    work = 0

    for i in range(start, count):
        # Eligible past: subsequences ending before i starts.
        past_end = i - length + 1
        if past_end <= 0:
            continue
        best_here = np.inf
        chunk = min(initial_chunk, past_end)
        lo = past_end - chunk
        abandoned = False
        while True:
            block = z[lo:past_end] if lo > 0 else z[:past_end]
            sq = ((block - z[i]) ** 2).sum(axis=1)
            work += len(block)
            best_here = min(best_here, float(np.sqrt(max(sq.min(), 0.0))))
            if best_here < best_value:
                # Cannot be the discord; record the bound and move on.
                abandoned = True
                break
            if lo == 0:
                break
            # Double the lookback.
            chunk *= 2
            past_end = lo
            lo = max(past_end - chunk, 0)
        profile[i] = best_here
        if not abandoned and best_here > best_value:
            best_value = best_here
            best_index = i

    discord = (
        Discord(index=best_index, length=length, distance=best_value)
        if best_index >= 0 and np.isfinite(best_value)
        else None
    )
    return DampResult(discord=discord, profile=profile, distances_computed=work)
