"""DRAG — Discord Range-Aware Gathering (Yankov, Keogh & Rebbapragada,
KAIS 2008).

Two-phase discord search with a range threshold ``r``:

1. *Candidate gathering*: scan subsequences once, keeping a set of
   candidates that have no non-trivial neighbor within ``r`` so far.
   A subsequence landing within ``r`` of a candidate eliminates both
   itself and that candidate from discord contention.
2. *Refinement*: compute each surviving candidate's true nearest-neighbor
   distance and keep those at distance >= ``r``.

If ``r`` is at most the true discord distance, DRAG provably returns the
true discord; if ``r`` was chosen too large, it fails (returns ``None``)
and the caller (MERLIN) retries with a smaller ``r``.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .brute import Discord
from .distance import znorm_subsequences

__all__ = ["drag"]


def drag(
    series: np.ndarray,
    length: int,
    r: float,
    exclusion: int | None = None,
) -> Discord | None:
    """Run DRAG at subsequence ``length`` with range threshold ``r``.

    Returns the top discord, or ``None`` when no subsequence has its
    nearest non-trivial neighbor at distance >= ``r``.
    """
    z = znorm_subsequences(series, length)
    count = len(z)
    if exclusion is None:
        exclusion = length
    if count <= exclusion:
        obs.incr("discord.drag.degenerate")
        return None

    # ------------------------------------------------------------------
    # Phase 1: candidate gathering.
    # ------------------------------------------------------------------
    candidates: list[int] = []
    candidate_matrix: list[np.ndarray] = []
    r_sq = r * r
    for j in range(count):
        survives = True
        if candidates:
            matrix = np.asarray(candidate_matrix)
            sq = ((matrix - z[j]) ** 2).sum(axis=1)
            indices = np.asarray(candidates)
            nontrivial = np.abs(indices - j) >= exclusion
            hit = nontrivial & (sq < r_sq)
            if hit.any():
                survives = False
                keep = ~hit
                candidates = [c for c, k in zip(candidates, keep) if k]
                candidate_matrix = [m for m, k in zip(candidate_matrix, keep) if k]
        if survives:
            candidates.append(j)
            candidate_matrix.append(z[j])
    # Candidate-set size and prune rate are what make the Table IV
    # pruning argument measurable: a healthy r leaves a tiny candidate
    # set out of `count` subsequences.
    obs.observe("discord.drag.candidates", len(candidates))
    if count:
        obs.observe("discord.drag.prune_rate", 1.0 - len(candidates) / count)
    if not candidates:
        obs.incr("discord.drag.failures")
        return None

    # ------------------------------------------------------------------
    # Phase 2: refinement — exact NN distance per candidate.
    # ------------------------------------------------------------------
    best: Discord | None = None
    all_indices = np.arange(count)
    for c in candidates:
        nontrivial = np.abs(all_indices - c) >= exclusion
        sq = ((z[nontrivial] - z[c]) ** 2).sum(axis=1)
        if sq.size == 0:
            continue
        nn = float(np.sqrt(max(sq.min(), 0.0)))
        if nn < r:
            continue  # had a neighbor inside the range after all
        if best is None or nn > best.distance:
            best = Discord(index=int(c), length=length, distance=nn)
    if best is None:
        obs.incr("discord.drag.failures")
    return best
