"""DRAG — Discord Range-Aware Gathering (Yankov, Keogh & Rebbapragada,
KAIS 2008).

Two-phase discord search with a range threshold ``r``:

1. *Candidate gathering*: scan subsequences once, keeping a set of
   candidates that have no non-trivial neighbor within ``r`` so far.
   A subsequence landing within ``r`` of a candidate eliminates both
   itself and that candidate from discord contention.
2. *Refinement*: compute each surviving candidate's true nearest-neighbor
   distance and keep those at distance >= ``r``.

If ``r`` is at most the true discord distance, DRAG provably returns the
true discord; if ``r`` was chosen too large, it fails (returns ``None``)
and the caller (MERLIN) retries with a smaller ``r``.

Under the default kernel modes (``repro.discord.kernels``) phase 1 runs
as blocked matrix sweeps against a preallocated candidate buffer — one
GEMM per block against the surviving candidates plus one intra-block
GEMM, no Python-level candidate-list rebuilds — and phase 2 is a single
batched nearest-neighbor scan.  Block-level elimination is *order-free*:
any pair at distance < ``r`` with non-trivial separation eliminates both
members, which can only prune **more** than the sequential scan (every
such elimination certifies a nearest neighbor below ``r``), never the
true discord; phase 2's exact filter makes the final answer identical.
``set_discord_mode("reference")`` restores the original sequential scan
verbatim as the equivalence oracle.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .brute import Discord
from .distance import znorm_subsequences
from .kernels import (
    SeriesContext,
    as_context,
    correct_tiny_distances,
    default_exclusion,
    distance_profiles,
    resolve_mode,
    snap_argmax,
)

__all__ = ["drag"]

#: Phase-1 sweep width: one GEMM of ``PHASE1_BLOCK x |candidates|`` plus
#: one intra-block GEMM per sweep.
PHASE1_BLOCK = 512
#: Phase-2 refinement batch: candidates scanned per chunked NN sweep.
PHASE2_BLOCK = 128


def drag(
    series: np.ndarray,
    length: int,
    r: float,
    exclusion: int | None = None,
    *,
    ctx: SeriesContext | None = None,
    preprune: np.ndarray | None = None,
) -> Discord | None:
    """Run DRAG at subsequence ``length`` with range threshold ``r``.

    Returns the top discord, or ``None`` when no subsequence has its
    nearest non-trivial neighbor at distance >= ``r``.

    Parameters
    ----------
    ctx:
        Optional shared :class:`~repro.discord.kernels.SeriesContext`
        (MERLIN threads one across its whole length schedule).
    preprune:
        Optional boolean mask of subsequences already known to have a
        non-trivial neighbor closer than ``r`` (e.g. from a previous
        length's discord profile); they are skipped outright.  Only
        honored by the kernel paths — the reference oracle ignores it.
    """
    if exclusion is None:
        exclusion = default_exclusion(length, "discord")
    mode = resolve_mode(None, length, max(len(np.asarray(series)) - length + 1, 0))
    if mode == "reference":
        return _drag_reference(series, length, r, exclusion)
    return _drag_blocked(series, length, r, exclusion, mode, ctx, preprune)


def _drag_blocked(
    series: np.ndarray,
    length: int,
    r: float,
    exclusion: int,
    mode: str,
    ctx: SeriesContext | None,
    preprune: np.ndarray | None,
) -> Discord | None:
    context = as_context(series, ctx)
    count = context.count(length)
    if count <= exclusion:
        obs.incr("discord.drag.degenerate")
        return None
    z = context.znorm(length)
    sq_norms = context.znorm_sq_norms(length)
    r_sq = r * r

    # ------------------------------------------------------------------
    # Phase 1: blocked candidate gathering into a preallocated buffer.
    # ------------------------------------------------------------------
    buffer = np.empty(count, dtype=np.int64)
    n_cand = 0
    for block_start in range(0, count, PHASE1_BLOCK):
        block_stop = min(block_start + PHASE1_BLOCK, count)
        idx = np.arange(block_start, block_stop)
        if preprune is not None:
            idx = idx[~preprune[block_start:block_stop]]
            if idx.size == 0:
                continue
        z_block = z[idx]
        killed = np.zeros(idx.size, dtype=bool)
        if n_cand:
            cand = buffer[:n_cand]
            sq = (
                sq_norms[idx][:, None]
                + sq_norms[cand][None, :]
                - 2.0 * (z_block @ z[cand].T)
            )
            hit = (sq < r_sq) & (np.abs(idx[:, None] - cand[None, :]) >= exclusion)
            killed |= hit.any(axis=1)
            cand_dead = hit.any(axis=0)
            if cand_dead.any():
                survivors = cand[~cand_dead]
                n_cand = survivors.size
                buffer[:n_cand] = survivors
        sq_in = (
            sq_norms[idx][:, None]
            + sq_norms[idx][None, :]
            - 2.0 * (z_block @ z_block.T)
        )
        hit_in = (sq_in < r_sq) & (np.abs(idx[:, None] - idx[None, :]) >= exclusion)
        killed |= hit_in.any(axis=1)
        fresh = idx[~killed]
        buffer[n_cand : n_cand + fresh.size] = fresh
        n_cand += fresh.size

    obs.observe("discord.drag.candidates", n_cand)
    if count:
        obs.observe("discord.drag.prune_rate", 1.0 - n_cand / count)
    if n_cand == 0:
        obs.incr("discord.drag.failures")
        return None

    # ------------------------------------------------------------------
    # Phase 2: one batched NN scan over the surviving candidates.
    # ------------------------------------------------------------------
    candidates = buffer[:n_cand]
    columns = np.arange(count)
    nn = np.empty(n_cand)
    for chunk_start in range(0, n_cand, PHASE2_BLOCK):
        chunk = candidates[chunk_start : chunk_start + PHASE2_BLOCK]
        sq = distance_profiles(context, length, chunk, mode=mode)
        band = np.abs(chunk[:, None] - columns[None, :]) < exclusion
        sq[band] = np.inf
        correct_tiny_distances(context, length, chunk, sq)
        nn[chunk_start : chunk_start + chunk.size] = np.sqrt(
            np.maximum(sq.min(axis=1), 0.0)
        )
    # Candidates whose zone bans every pair have no neighbor at all (the
    # reference skips them); candidates with a neighbor inside the range
    # fail the >= r filter.  Tie-snapped argmax in ascending candidate
    # order keeps the winner identical across kernel modes.
    eligible = np.isfinite(nn) & (nn >= r)
    if not eligible.any():
        obs.incr("discord.drag.failures")
        return None
    scored = np.where(eligible, nn, -np.inf)
    best = snap_argmax(scored)
    return Discord(
        index=int(candidates[best]), length=length, distance=float(nn[best])
    )


def _drag_reference(
    series: np.ndarray, length: int, r: float, exclusion: int
) -> Discord | None:
    """The original sequential DRAG, verbatim — the equivalence oracle."""
    z = znorm_subsequences(series, length)
    count = len(z)
    if count <= exclusion:
        obs.incr("discord.drag.degenerate")
        return None

    # ------------------------------------------------------------------
    # Phase 1: candidate gathering.
    # ------------------------------------------------------------------
    candidates: list[int] = []
    candidate_matrix: list[np.ndarray] = []
    r_sq = r * r
    for j in range(count):
        survives = True
        if candidates:
            matrix = np.asarray(candidate_matrix)
            sq = ((matrix - z[j]) ** 2).sum(axis=1)
            indices = np.asarray(candidates)
            nontrivial = np.abs(indices - j) >= exclusion
            hit = nontrivial & (sq < r_sq)
            if hit.any():
                survives = False
                keep = ~hit
                candidates = [c for c, k in zip(candidates, keep) if k]
                candidate_matrix = [m for m, k in zip(candidate_matrix, keep) if k]
        if survives:
            candidates.append(j)
            candidate_matrix.append(z[j])
    # Candidate-set size and prune rate are what make the Table IV
    # pruning argument measurable: a healthy r leaves a tiny candidate
    # set out of `count` subsequences.
    obs.observe("discord.drag.candidates", len(candidates))
    if count:
        obs.observe("discord.drag.prune_rate", 1.0 - len(candidates) / count)
    if not candidates:
        obs.incr("discord.drag.failures")
        return None

    # ------------------------------------------------------------------
    # Phase 2: refinement — exact NN distance per candidate.
    # ------------------------------------------------------------------
    survivors: list[tuple[int, float]] = []
    all_indices = np.arange(count)
    for c in candidates:
        nontrivial = np.abs(all_indices - c) >= exclusion
        sq = ((z[nontrivial] - z[c]) ** 2).sum(axis=1)
        if sq.size == 0:
            continue
        nn = float(np.sqrt(max(sq.min(), 0.0)))
        if nn < r:
            continue  # had a neighbor inside the range after all
        survivors.append((c, nn))
    if not survivors:
        obs.incr("discord.drag.failures")
        return None
    # Same tie-snapped selection as the kernel paths (see snap_argmax):
    # mutual-NN pairs are exact ties, and each mode's rounding would
    # otherwise pick a different winner.
    best = snap_argmax(np.asarray([nn for _, nn in survivors]))
    c, nn = survivors[best]
    return Discord(index=int(c), length=length, distance=nn)
