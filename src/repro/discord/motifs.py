"""Motif discovery — the discord's dual.

The matrix profile's *minima* are motifs: subsequence pairs that repeat
almost exactly.  TriAD does not use motifs directly, but the machinery
is a two-line extension of the discord substrate and completes the
matrix-profile toolbox the paper's related work ([27], [28]) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import SeriesContext, default_exclusion
from .matrix_profile import matrix_profile

__all__ = ["Motif", "top_k_motifs"]


@dataclass(frozen=True)
class Motif:
    """A repeating pattern: the two closest occurrences and their distance."""

    first: int
    second: int
    length: int
    distance: float

    @property
    def intervals(self) -> tuple[tuple[int, int], tuple[int, int]]:
        return (
            (self.first, self.first + self.length),
            (self.second, self.second + self.length),
        )


def top_k_motifs(
    series: np.ndarray,
    length: int,
    k: int = 1,
    exclusion: int | None = None,
    *,
    ctx: SeriesContext | None = None,
) -> list[Motif]:
    """The ``k`` best (closest-pair) motifs, mutually non-overlapping.

    After each motif is taken, candidates overlapping either of its
    occurrences are suppressed so distinct patterns are returned.
    ``exclusion`` defaults to the matrix-profile convention
    (``default_exclusion(length, "profile")``, i.e. ``length // 2``).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if exclusion is None:
        exclusion = default_exclusion(length, "profile")
    mp = matrix_profile(series, length, exclusion=exclusion, ctx=ctx)
    scores = np.where(np.isfinite(mp.profile), mp.profile, np.inf)
    suppressed = np.zeros(len(scores), dtype=bool)

    motifs: list[Motif] = []
    while len(motifs) < k:
        index = int(np.argmin(scores))
        if not np.isfinite(scores[index]):
            break
        partner = int(mp.indices[index])
        if suppressed[partner]:
            # The stored nearest neighbor overlaps an earlier motif;
            # this candidate cannot form a new non-overlapping pair.
            scores[index] = np.inf
            continue
        motifs.append(
            Motif(
                first=min(index, partner),
                second=max(index, partner),
                length=length,
                distance=float(mp.profile[index]),
            )
        )
        for occurrence in (index, partner):
            lo = max(occurrence - length + 1, 0)
            hi = min(occurrence + length, len(scores))
            scores[lo:hi] = np.inf
            suppressed[lo:hi] = True
    return motifs
