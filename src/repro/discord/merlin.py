"""MERLIN — parameter-free discovery of arbitrary-length discords
(Nakamura, Imamura, Mercer & Keogh, ICDM 2020).

MERLIN runs DRAG across a range of subsequence lengths, choosing the
range threshold ``r`` adaptively so each DRAG call prunes aggressively
yet never misses the true discord:

- until a first discord is found: ``r = 2 * sqrt(length)``, halved
  until DRAG succeeds;
- next four successful lengths: ``r = 0.99 x`` previous discord
  distance, decayed by a further 0.99 on failure;
- afterwards: ``r = mean - 2 * std`` of the last five discord distances,
  reduced by one std (or 5%) on failure.

Lengths where even the brute-force fallback finds no non-trivial
neighbor (e.g. a wide exclusion zone on a short region) are skipped and
contribute nothing to the schedule.

Under the kernel modes (anything but ``reference``) one
:class:`~repro.discord.kernels.SeriesContext` is threaded across the
whole length schedule — prefix-sum moments are computed once for the
series, never re-derived per length — and the previous length's discord
is reused two ways before each DRAG call:

- *lower-bound seeding*: its nearest-neighbor distance at the *current*
  length is a valid lower bound on the current discord distance (the
  discord maximizes NN distance over all starts, this start included),
  so ``r`` is raised to it when the schedule's guess is lower — and DRAG
  is then guaranteed to succeed on the first call;
- *pre-pruning*: every subsequence within ``r`` of it already has a
  non-trivial neighbor inside the range and is handed to DRAG as dead on
  arrival (recomputed from the cached profile row on each retry since
  ``r`` shrinks).

Both reuses only tighten DRAG's pruning; the discord returned is
identical because a successful DRAG always reports the exact argmax over
subsequences with NN distance >= ``r``.  ``set_discord_mode("reference")``
disables them and restores the original schedule verbatim.

TriAD invokes MERLIN only on the short padded region around its
suspected window, which is where the 10x inference speedup of Table IV
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .brute import Discord, brute_force_discord
from .drag import drag
from .kernels import SeriesContext, distance_profiles, get_discord_mode

__all__ = ["MerlinResult", "merlin"]

#: Relative safety margin applied when seeding ``r`` from the previous
#: length's lower bound.  When the previous discord start is *still* the
#: discord (or tied with it) at the current length, the bound equals the
#: discord distance exactly, and seeding ``r`` right at it would park
#: every tied candidate on DRAG's ``< r`` elimination knife edge where
#: per-mode rounding decides differently.  Backing off by a sliver keeps
#: the guarantee (any ``r`` <= the true discord distance is safe) and
#: costs only marginal pruning.
LB_MARGIN = 1e-6


@dataclass
class MerlinResult:
    """Discords found per subsequence length, plus search bookkeeping."""

    discords: list[Discord] = field(default_factory=list)
    drag_calls: int = 0

    def intervals(self) -> list[tuple[int, int]]:
        """Half-open spans of all found discords."""
        return [d.interval for d in self.discords]

    def best(self) -> Discord | None:
        """Discord with the largest length-normalized distance."""
        if not self.discords:
            return None
        return max(self.discords, key=lambda d: d.distance / np.sqrt(d.length))


def _prev_discord_profile(
    ctx: SeriesContext, prev_index: int, length: int, exclusion: int
) -> tuple[np.ndarray, np.ndarray, float] | None:
    """Distances from the previous length's discord start at ``length``.

    Returns ``(distances, nontrivial_mask, lower_bound)`` where the lower
    bound is that start's NN distance at this length, or ``None`` when
    the start no longer fits or has no non-trivial neighbor.
    """
    count = ctx.count(length)
    if prev_index >= count:
        return None
    sq = distance_profiles(ctx, length, np.asarray([prev_index]))[0]
    distances = np.sqrt(sq)
    nontrivial = np.abs(np.arange(count) - prev_index) >= exclusion
    if not nontrivial.any():
        return None
    return distances, nontrivial, float(distances[nontrivial].min())


def merlin(
    series: np.ndarray,
    min_length: int,
    max_length: int,
    step: int = 1,
    exclusion_factor: float = 1.0,
    max_retries: int = 64,
) -> MerlinResult:
    """Find the top discord at every length in ``range(min_length,
    max_length + 1, step)``.

    Parameters
    ----------
    step:
        Length stride; 1 reproduces the original algorithm, larger
        values trade completeness for speed (used by the benchmark
        harness on long series).
    exclusion_factor:
        Trivial-match zone as a fraction of the subsequence length.
        1.0 = non-overlapping neighbors only (MERLIN's convention).
    """
    series = np.asarray(series, dtype=np.float64)
    lengths = [
        l for l in range(min_length, max_length + 1, step) if 2 * l <= len(series)
    ]
    result = MerlinResult()
    # One moment/FFT cache for the whole sweep; the reference mode runs
    # the original per-length path untouched.
    ctx = None if get_discord_mode() == "reference" else SeriesContext(series)
    prev_index: int | None = None
    # Track *length-normalized* discord distances (z-norm distances grow
    # like sqrt(length)), so the schedule stays valid for any step size.
    # The schedule keys off how many lengths have actually *succeeded*:
    # a length whose search failed outright (brute force included) adds
    # nothing to recent_norm, and the next length must not assume a
    # previous distance exists.
    recent_norm: list[float] = []
    with obs.span(
        "discord.merlin",
        series_length=len(series),
        min_length=min_length,
        max_length=max_length,
        step=step,
    ) as merlin_span:
        for length in lengths:
            exclusion = max(int(round(exclusion_factor * length)), 1)
            scale = float(np.sqrt(length))
            if not recent_norm:
                r = 2.0 * scale
                decay = 0.5
            elif len(recent_norm) < 5:
                r = 0.99 * recent_norm[-1] * scale
                decay = 0.9
            else:
                window = np.asarray(recent_norm[-5:])
                r = float(window.mean() - 2.0 * window.std()) * scale
                decay = 0.9
            r = max(r, 1e-6)

            prev_profile = None
            if ctx is not None and prev_index is not None:
                prev_profile = _prev_discord_profile(
                    ctx, prev_index, length, exclusion
                )
            seeded = (
                None if prev_profile is None else prev_profile[2] * (1.0 - LB_MARGIN)
            )
            if seeded is not None and seeded > r:
                # Seeding never overshoots: the current discord distance
                # is >= this bound, so DRAG succeeds immediately.  Applied
                # once — retries decay plainly so a failure (impossible in
                # exact arithmetic, conceivable in floating point) cannot
                # loop at the floor.
                r = seeded
                obs.incr("discord.merlin.lb_seeds")

            found: Discord | None = None
            retries = 0
            for _ in range(max_retries):
                result.drag_calls += 1
                retries += 1
                preprune = None
                if prev_profile is not None:
                    distances, nontrivial, _ = prev_profile
                    preprune = nontrivial & (distances < r)
                found = drag(
                    series, length, r, exclusion=exclusion, ctx=ctx, preprune=preprune
                )
                if found is not None:
                    break
                r *= decay
                if r < 1e-9:
                    break
            obs.incr("discord.drag_calls", retries)
            if found is None:
                # Retries exhausted (or degenerate series): fall back to
                # the exact scan so no length is silently skipped.
                obs.incr("discord.brute_force_fallbacks")
                try:
                    found = brute_force_discord(
                        series, length, exclusion=exclusion, ctx=ctx
                    )
                except ValueError:
                    obs.incr("discord.skipped_lengths")
                    continue
            result.discords.append(found)
            recent_norm.append(found.distance / scale)
            prev_index = found.index
        merlin_span.set(
            lengths=len(lengths),
            discords=len(result.discords),
            drag_calls=result.drag_calls,
        )
    return result
