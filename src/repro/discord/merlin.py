"""MERLIN — parameter-free discovery of arbitrary-length discords
(Nakamura, Imamura, Mercer & Keogh, ICDM 2020).

MERLIN runs DRAG across a range of subsequence lengths, choosing the
range threshold ``r`` adaptively so each DRAG call prunes aggressively
yet never misses the true discord:

- until a first discord is found: ``r = 2 * sqrt(length)``, halved
  until DRAG succeeds;
- next four successful lengths: ``r = 0.99 x`` previous discord
  distance, decayed by a further 0.99 on failure;
- afterwards: ``r = mean - 2 * std`` of the last five discord distances,
  reduced by one std (or 5%) on failure.

Lengths where even the brute-force fallback finds no non-trivial
neighbor (e.g. a wide exclusion zone on a short region) are skipped and
contribute nothing to the schedule.

TriAD invokes MERLIN only on the short padded region around its
suspected window, which is where the 10x inference speedup of Table IV
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .brute import Discord, brute_force_discord
from .drag import drag

__all__ = ["MerlinResult", "merlin"]


@dataclass
class MerlinResult:
    """Discords found per subsequence length, plus search bookkeeping."""

    discords: list[Discord] = field(default_factory=list)
    drag_calls: int = 0

    def intervals(self) -> list[tuple[int, int]]:
        """Half-open spans of all found discords."""
        return [d.interval for d in self.discords]

    def best(self) -> Discord | None:
        """Discord with the largest length-normalized distance."""
        if not self.discords:
            return None
        return max(self.discords, key=lambda d: d.distance / np.sqrt(d.length))


def merlin(
    series: np.ndarray,
    min_length: int,
    max_length: int,
    step: int = 1,
    exclusion_factor: float = 1.0,
    max_retries: int = 64,
) -> MerlinResult:
    """Find the top discord at every length in ``range(min_length,
    max_length + 1, step)``.

    Parameters
    ----------
    step:
        Length stride; 1 reproduces the original algorithm, larger
        values trade completeness for speed (used by the benchmark
        harness on long series).
    exclusion_factor:
        Trivial-match zone as a fraction of the subsequence length.
        1.0 = non-overlapping neighbors only (MERLIN's convention).
    """
    series = np.asarray(series, dtype=np.float64)
    lengths = [
        l for l in range(min_length, max_length + 1, step) if 2 * l <= len(series)
    ]
    result = MerlinResult()
    # Track *length-normalized* discord distances (z-norm distances grow
    # like sqrt(length)), so the schedule stays valid for any step size.
    # The schedule keys off how many lengths have actually *succeeded*:
    # a length whose search failed outright (brute force included) adds
    # nothing to recent_norm, and the next length must not assume a
    # previous distance exists.
    recent_norm: list[float] = []
    with obs.span(
        "discord.merlin",
        series_length=len(series),
        min_length=min_length,
        max_length=max_length,
        step=step,
    ) as merlin_span:
        for length in lengths:
            exclusion = max(int(round(exclusion_factor * length)), 1)
            scale = float(np.sqrt(length))
            if not recent_norm:
                r = 2.0 * scale
                decay = 0.5
            elif len(recent_norm) < 5:
                r = 0.99 * recent_norm[-1] * scale
                decay = 0.9
            else:
                window = np.asarray(recent_norm[-5:])
                r = float(window.mean() - 2.0 * window.std()) * scale
                decay = 0.9
            r = max(r, 1e-6)

            found: Discord | None = None
            retries = 0
            for _ in range(max_retries):
                result.drag_calls += 1
                retries += 1
                found = drag(series, length, r, exclusion=exclusion)
                if found is not None:
                    break
                r *= decay
                if r < 1e-9:
                    break
            obs.incr("discord.drag_calls", retries)
            if found is None:
                # Retries exhausted (or degenerate series): fall back to
                # the exact scan so no length is silently skipped.
                obs.incr("discord.brute_force_fallbacks")
                try:
                    found = brute_force_discord(series, length, exclusion=exclusion)
                except ValueError:
                    obs.incr("discord.skipped_lengths")
                    continue
            result.discords.append(found)
            recent_norm.append(found.distance / scale)
        merlin_span.set(
            lengths=len(lengths),
            discords=len(result.discords),
            drag_calls=result.drag_calls,
        )
    return result
