"""Brute-force discord discovery — the exact O(N^2) reference.

A *discord* is the subsequence whose distance to its nearest non-trivial
neighbor is largest.  This module computes it directly from the full
nearest-neighbor profile; DRAG and MERLIN must agree with it (asserted
in the test suite) while doing less work.  The profile itself comes from
the shared kernel layer, so the scan runs under whatever discord mode is
active (``reference`` restores the original scalar path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import (
    SeriesContext,
    default_exclusion,
    nearest_neighbor_distances,
    snap_argmax,
)

__all__ = ["Discord", "brute_force_discord"]


@dataclass(frozen=True)
class Discord:
    """A discovered discord: subsequence start, length, and NN distance."""

    index: int
    length: int
    distance: float

    @property
    def interval(self) -> tuple[int, int]:
        """Half-open ``[start, end)`` span of the discord subsequence."""
        return self.index, self.index + self.length


def brute_force_discord(
    series: np.ndarray,
    length: int,
    exclusion: int | None = None,
    *,
    ctx: SeriesContext | None = None,
) -> Discord:
    """Find the top-1 discord of ``series`` at ``length`` exhaustively.

    Raises ``ValueError`` when the exclusion zone bans every pair (the
    profile is all-``inf``; see :func:`nearest_neighbor_distances`), with
    the offending geometry in the message so MERLIN failure reports say
    *which* length/exclusion combination was unsatisfiable.
    """
    profile = nearest_neighbor_distances(series, length, exclusion=exclusion, ctx=ctx)
    finite = np.isfinite(profile)
    if not finite.any():
        effective = (
            exclusion if exclusion is not None else default_exclusion(length, "profile")
        )
        raise ValueError(
            "no subsequence has a non-trivial neighbor: series length "
            f"{len(np.asarray(series))} yields {len(profile)} subsequence(s) "
            f"at length={length} under exclusion={effective} — shorten the "
            "exclusion zone or provide a longer series"
        )
    # Tie-snapped so every kernel mode reports the same discord when the
    # top pair is mutual (exactly tied in real arithmetic).
    profile = np.where(finite, profile, -np.inf)
    index = snap_argmax(profile)
    return Discord(index=index, length=length, distance=float(profile[index]))
