"""Brute-force discord discovery — the exact O(N^2) reference.

A *discord* is the subsequence whose distance to its nearest non-trivial
neighbor is largest.  This module computes it directly from the full
nearest-neighbor profile; DRAG and MERLIN must agree with it (asserted
in the test suite) while doing less work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import nearest_neighbor_distances

__all__ = ["Discord", "brute_force_discord"]


@dataclass(frozen=True)
class Discord:
    """A discovered discord: subsequence start, length, and NN distance."""

    index: int
    length: int
    distance: float

    @property
    def interval(self) -> tuple[int, int]:
        """Half-open ``[start, end)`` span of the discord subsequence."""
        return self.index, self.index + self.length


def brute_force_discord(
    series: np.ndarray, length: int, exclusion: int | None = None
) -> Discord:
    """Find the top-1 discord of ``series`` at ``length`` exhaustively.

    Raises ``ValueError`` when the exclusion zone bans every pair (the
    profile is all-``inf``; see :func:`nearest_neighbor_distances`), with
    the offending geometry in the message so MERLIN failure reports say
    *which* length/exclusion combination was unsatisfiable.
    """
    profile = nearest_neighbor_distances(series, length, exclusion=exclusion)
    finite = np.isfinite(profile)
    if not finite.any():
        effective = exclusion if exclusion is not None else max(length // 2, 1)
        raise ValueError(
            "no subsequence has a non-trivial neighbor: series length "
            f"{len(np.asarray(series))} yields {len(profile)} subsequence(s) "
            f"at length={length} under exclusion={effective} — shorten the "
            "exclusion zone or provide a longer series"
        )
    profile = np.where(finite, profile, -np.inf)
    index = int(np.argmax(profile))
    return Discord(index=index, length=length, distance=float(profile[index]))
