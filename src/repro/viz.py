"""Terminal visualization: sparklines, line plots, and detection reports.

Pure-text plotting (no matplotlib in this environment) used by the
examples and the CLI to make detections inspectable: the case-study
walkthrough renders Fig. 11's similarity curves and Fig. 12's discord
map with these helpers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "ascii_plot", "mark_intervals", "detection_report"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Compress ``values`` into a one-line unicode sparkline."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if len(values) > width:
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    lo, hi = float(values.min()), float(values.max())
    span = max(hi - lo, 1e-12)
    levels = ((values - lo) / span * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)


def ascii_plot(
    values: np.ndarray,
    height: int = 10,
    width: int = 72,
    marks: list[tuple[int, int]] | None = None,
    mark_char: str = "!",
) -> str:
    """Render a series as a character grid with optional marked intervals.

    Parameters
    ----------
    marks:
        Half-open index intervals to flag in the footer row (e.g. the
        labeled anomaly or the predicted points).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    if len(values) > width:
        chunks = np.array_split(values, width)
        compressed = np.array([chunk.mean() for chunk in chunks])
        scale = len(values) / width
    else:
        compressed = values
        scale = 1.0
    lo, hi = float(compressed.min()), float(compressed.max())
    span = max(hi - lo, 1e-12)
    rows = []
    levels = ((compressed - lo) / span * (height - 1)).round().astype(int)
    for row in range(height - 1, -1, -1):
        line = "".join("█" if level >= row else " " for level in levels)
        rows.append(line)
    if marks:
        footer = [" "] * len(compressed)
        for start, end in marks:
            a = int(start / scale)
            b = max(int(np.ceil(end / scale)), a + 1)
            for i in range(a, min(b, len(footer))):
                footer[i] = mark_char
        rows.append("".join(footer))
    return "\n".join(rows)


def mark_intervals(length: int, intervals: list[tuple[int, int]], char: str = "^") -> str:
    """A one-line ruler with ``char`` under the given intervals."""
    line = [" "] * length
    for start, end in intervals:
        for i in range(max(start, 0), min(end, length)):
            line[i] = char
    return "".join(line)


def detection_report(detection, labels: np.ndarray | None = None) -> str:
    """Human-readable multi-line report of a :class:`TriADDetection`.

    Includes the per-domain similarity sparklines, the flagged window,
    the discord map, and (when labels are provided) hit/miss context.
    """
    lines = ["TriAD detection report", "=" * 40]
    lines.append(f"flagged window : [{detection.window[0]}, {detection.window[1]})")
    lo, hi = detection.search_region
    lines.append(f"search region  : [{lo}, {hi})  ({hi - lo} points)")
    lines.append(f"exception      : {detection.votes.exception_applied}")
    lines.append("")
    lines.append("per-domain window similarity (dip = deviant):")
    for domain, scores in detection.similarity.items():
        deviant = int(np.argmin(scores)) if len(scores) else -1
        lines.append(f"  {domain:9s} {sparkline(scores)}  min @ window {deviant}")
    lines.append("")
    lines.append(f"discords found : {len(detection.discords.discords)} lengths")
    for discord in detection.discords.discords[:8]:
        a = lo + discord.index
        lines.append(
            f"  length {discord.length:4d}: [{a}, {a + discord.length}) "
            f"distance {discord.distance:.2f}"
        )
    if len(detection.discords.discords) > 8:
        lines.append(f"  ... {len(detection.discords.discords) - 8} more")
    predicted = np.flatnonzero(detection.predictions)
    if predicted.size:
        lines.append(
            f"predictions    : {predicted.size} points in "
            f"[{predicted.min()}, {predicted.max()}]"
        )
    else:
        lines.append("predictions    : none")
    if labels is not None:
        labels = np.asarray(labels)
        events = np.flatnonzero(labels)
        if events.size:
            lines.append(
                f"ground truth   : [{events.min()}, {events.max() + 1}) "
                f"({events.size} points)"
            )
            overlap = int((detection.predictions.astype(bool) & labels.astype(bool)).sum())
            lines.append(f"overlap        : {overlap} points")
    return "\n".join(lines)
