"""Tri-domain feature extraction (paper Sec. III-B).

Each window yields three views:

- *temporal*: the z-normalized raw window, 1 channel;
- *frequency*: Table I's spectral amplitude/phase/power, 3 channels;
- *residual*: the window with its periodic structure removed, 1 channel.

This module is the canonical home of the extraction primitives (it
moved here from ``repro.core.features`` so the pipeline layer can own
windowing *and* featurization without importing upward into ``core``;
``repro.core.features`` re-exports everything for compatibility).  The
residual path runs through the batched, bit-identical
:func:`repro.signal.decompose.residual_components`, which amortizes the
per-window decomposition loop — the hot ~90% of extraction.
"""

from __future__ import annotations

import numpy as np

from ..signal.decompose import residual_components
from ..signal.fft import frequency_features
from ..signal.normalize import zscore

__all__ = ["DOMAINS", "domain_channels", "extract_domain", "extract_all_domains"]

DOMAINS = ("temporal", "frequency", "residual")


def domain_channels(domain: str) -> int:
    """Input-channel count per domain (1/3/1 as in the paper)."""
    if domain == "frequency":
        return 3
    if domain in DOMAINS:
        return 1
    raise KeyError(f"unknown domain {domain!r}")


def extract_domain(windows: np.ndarray, domain: str, period: int) -> np.ndarray:
    """Extract one domain's features from a batch of windows.

    Parameters
    ----------
    windows:
        Array of shape ``(batch, length)``.
    domain:
        One of ``temporal``, ``frequency``, ``residual``.
    period:
        Dataset period (used by the residual decomposition).

    Returns
    -------
    Array of shape ``(batch, channels, length)``.
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
    if domain == "temporal":
        return zscore(windows, axis=-1)[:, None, :]
    if domain == "frequency":
        return frequency_features(windows)
    if domain == "residual":
        return residual_components(windows, period)[:, None, :]
    raise KeyError(f"unknown domain {domain!r}")


def extract_all_domains(
    windows: np.ndarray, period: int, domains: tuple[str, ...] = DOMAINS
) -> dict[str, np.ndarray]:
    """Extract every requested domain for a batch of windows.

    Every domain is row-independent: extracting a window set in one call
    and slicing per batch is bit-identical to extracting each batch
    separately — the property :class:`repro.pipeline.FeaturePipeline`
    relies on to memoize per window set.
    """
    return {domain: extract_domain(windows, domain, period) for domain in domains}
