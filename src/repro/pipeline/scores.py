"""Shared point-score utilities.

Hoisted out of ``repro.baselines.base`` so every layer — baseline
thresholds, serve alert calibration, window-scorer adapters — turns
window scores into point scores and thresholds through one
implementation (``repro.baselines`` re-exports both for
compatibility).
"""

from __future__ import annotations

import numpy as np

__all__ = ["spread_window_scores", "calibrate_threshold"]


def spread_window_scores(
    scores: np.ndarray, starts: np.ndarray, length: int, total: int
) -> np.ndarray:
    """Convert per-window scores into per-point scores by averaging the
    scores of every window covering each point."""
    accumulated = np.zeros(total)
    counts = np.zeros(total)
    for score, start in zip(scores, starts):
        accumulated[start : start + length] += score
        counts[start : start + length] += 1.0
    counts[counts == 0] = 1.0
    return accumulated / counts


def calibrate_threshold(train_scores: np.ndarray, sigma: float = 3.0) -> float:
    """Mean + ``sigma`` std of the training scores — the conventional
    label-free threshold for reconstruction/likelihood detectors."""
    train_scores = np.asarray(train_scores, dtype=np.float64)
    return float(train_scores.mean() + sigma * train_scores.std())
