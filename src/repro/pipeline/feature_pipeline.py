"""The one way to window, featurize, and score a series.

:class:`FeaturePipeline` composes ``plan_windows`` → ``sliding_windows``
→ ``extract_all_domains`` behind a content-keyed memo cache
(:class:`repro.pipeline.cache.FeatureCache`):

- the trainer extracts per-domain features *once per window set*
  instead of once per batch per epoch;
- archive sweeps across seeds reuse one extraction per dataset (the
  window content is seed-independent);
- the serving registry windows calibration data through the same cache
  the trainer populated, instead of re-deriving it from private
  detector state.

Memoized results are returned **read-only** (``writeable=False``); the
usual consumers either only read them (encoder forwards) or slice
batches out of them (fancy indexing copies).  Mutating consumers must
copy first — by design, so a cache hit can never be corrupted.

A process-wide :func:`default_pipeline` is shared by ``TriAD`` and the
serve builders so independent components actually hit each other's
entries; pass an explicit pipeline for isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..signal.windows import WindowPlan, plan_windows, sliding_windows
from .cache import FeatureCache, content_key
from .features import DOMAINS, extract_all_domains

__all__ = ["FeaturePipeline", "WindowFeatures", "default_pipeline"]


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class WindowFeatures:
    """One series' windows, their offsets, and per-domain features."""

    windows: np.ndarray
    starts: np.ndarray
    features: dict[str, np.ndarray]
    plan: WindowPlan


class FeaturePipeline:
    """Memoized window→feature pipeline over a :class:`FeatureCache`.

    ``memoize=False`` disables lookups/stores while keeping the exact
    same code path — the knob the cache-correctness tests and the
    ``bench_pipeline`` gate flip to prove cached and uncached outputs
    are bit-identical.
    """

    def __init__(
        self, cache: FeatureCache | None = None, memoize: bool = True
    ) -> None:
        self.cache = cache if cache is not None else FeatureCache()
        self.memoize = memoize

    # ------------------------------------------------------------------
    # Memo plumbing
    # ------------------------------------------------------------------
    def _memo(self, key_parts: tuple, compute):
        if not self.memoize:
            return compute()
        key = content_key(*key_parts)
        value = self.cache.get(key)
        if value is not None:
            obs.incr("pipeline.cache.hits")
            return value
        obs.incr("pipeline.cache.misses")
        value = compute()
        self.cache.put(key, value)
        return value

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def plan(
        self,
        train_series: np.ndarray,
        periods_per_window: float = 2.5,
        stride_fraction: float = 0.25,
        min_length: int = 16,
        max_length: int | None = None,
    ) -> WindowPlan:
        """Memoized :func:`repro.signal.windows.plan_windows` (the period
        estimate is the expensive part)."""
        return self._memo(
            (
                "plan",
                train_series,
                periods_per_window,
                stride_fraction,
                min_length,
                max_length,
            ),
            lambda: plan_windows(
                train_series,
                periods_per_window=periods_per_window,
                stride_fraction=stride_fraction,
                min_length=min_length,
                max_length=max_length,
            ),
        )

    def plan_for(self, train_series: np.ndarray, config) -> WindowPlan:
        """Plan windows from any config exposing the TriAD plan fields
        (``periods_per_window``/``stride_fraction``/``min_window``/
        ``max_window``) — the CLI and serve builders route here instead
        of hardcoding plan constants."""
        return self.plan(
            train_series,
            periods_per_window=config.periods_per_window,
            stride_fraction=config.stride_fraction,
            min_length=config.min_window,
            max_length=config.max_window,
        )

    def windows(
        self, series: np.ndarray, length: int, stride: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Memoized :func:`repro.signal.windows.sliding_windows`."""

        def compute():
            windows, starts = sliding_windows(series, length, stride)
            return _freeze(windows), _freeze(starts)

        return self._memo(("windows", series, length, stride), compute)

    def features(
        self,
        windows: np.ndarray,
        period: int,
        domains: tuple[str, ...] = DOMAINS,
    ) -> dict[str, np.ndarray]:
        """Memoized per-domain features for one window set.

        Extraction is row-independent, so slicing a batch out of the
        result is bit-identical to extracting that batch directly — the
        trainer's per-epoch loop depends on this.
        """
        return self._memo(
            ("features", windows, period, tuple(domains)),
            lambda: {
                domain: _freeze(array)
                for domain, array in extract_all_domains(
                    windows, period, tuple(domains)
                ).items()
            },
        )

    def extract(
        self,
        windows: np.ndarray,
        period: int,
        domains: tuple[str, ...] = DOMAINS,
    ) -> dict[str, np.ndarray]:
        """Uncached batched extraction for epoch-varying content (e.g.
        freshly augmented windows, live serve batches) — same math, no
        memo traffic, no cache pollution."""
        return extract_all_domains(windows, period, tuple(domains))

    def series_features(
        self,
        series: np.ndarray,
        plan: WindowPlan,
        domains: tuple[str, ...] = DOMAINS,
    ) -> WindowFeatures:
        """Windows + offsets + features for ``series`` under ``plan``."""
        windows, starts = self.windows(series, plan.length, plan.stride)
        features = self.features(windows, plan.period, domains)
        return WindowFeatures(
            windows=windows, starts=starts, features=features, plan=plan
        )


_DEFAULT = FeaturePipeline()


def default_pipeline() -> FeaturePipeline:
    """The process-wide shared pipeline (one cache for all layers)."""
    return _DEFAULT
