"""The canonical detector/scorer contracts.

Before the pipeline layer existed the repo had four incompatible
contracts — ``baselines.base.BaseDetector``, the ``eval.runner``
protocols, ``serve.registry.WindowScorer``, and ``core.detector.TriAD``
itself — and every new workload re-wrapped the same models.  These are
now the single source of truth; ``eval.runner`` and ``serve.registry``
import (and re-export) them, and :mod:`repro.pipeline.adapters`
converts between the families.

Three shapes cover everything in the repo:

``Detector``
    offline, binary: ``fit(train)`` then ``predict(test) -> 0/1``.
``ScoringDetector``
    offline, continuous: ``fit(train)`` then ``score_series(test)``.
``WindowScorer``
    online, batched: ``score_windows(windows, batch)`` maps raw windows
    to one anomaly score each; what the serving engine micro-batches
    against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # serve sits above pipeline; typing-only reference
    from ..serve.stream import ReadyWindow

__all__ = ["Detector", "ScoringDetector", "WindowScorer"]


@runtime_checkable
class Detector(Protocol):
    """Anything trainable on a series that emits binary predictions."""

    def fit(self, train_series: np.ndarray) -> "Detector": ...

    def predict(self, test_series: np.ndarray) -> np.ndarray: ...


@runtime_checkable
class ScoringDetector(Protocol):
    """Detectors that also expose continuous anomaly scores."""

    def fit(self, train_series: np.ndarray) -> "ScoringDetector": ...

    def score_series(self, test_series: np.ndarray) -> np.ndarray: ...


class WindowScorer(ABC):
    """Batch window-scoring contract the serving engine micro-batches
    against.

    ``windows`` is a ``(batch, length)`` array of *raw* values gathered
    across streams; ``batch`` carries the per-window stream metadata
    (:class:`repro.serve.stream.ReadyWindow`: stream id, absolute end
    index, precomputed moments).  Stateless scorers may ignore
    ``batch`` entirely — offline adapters pass lightweight stand-ins.
    """

    name: str = "scorer"

    @abstractmethod
    def score_windows(
        self, windows: np.ndarray, batch: "Sequence[ReadyWindow]"
    ) -> np.ndarray:
        """One anomaly score per window (higher = more anomalous)."""

    def calibration_scores(self, length: int, stride: int) -> np.ndarray | None:
        """Scores this model produces on *normal* (training) data, or
        ``None`` if unknown.  The engine seeds each new stream's alert
        baseline with these so alerting is live from the first window
        instead of after a warm-up — crucial right after a failover."""
        return None
