"""Content-keyed memo cache backing :class:`repro.pipeline.FeaturePipeline`.

Keys are digests of array *content* (bytes + shape + dtype) plus the
scalar parameters of the computation, so a hit is only possible when
the inputs are value-identical — re-running a sweep over the same
dataset across seeds hits, a different series or window plan misses.
Entries are bounded by an LRU policy; cached arrays are returned
read-only so one consumer cannot silently corrupt another's view.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "FeatureCache", "content_key"]


def content_key(*parts) -> str:
    """Digest arbitrary parts (arrays, scalars, tuples) into a cache key.

    Arrays are hashed over their raw bytes together with shape and
    dtype; everything else contributes its ``repr``.  Hashing is
    O(bytes) with BLAKE2b — microseconds for typical window sets, noise
    next to the extraction it memoizes.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            array = np.ascontiguousarray(part)
            digest.update(f"ndarray:{array.dtype.str}:{array.shape}:".encode())
            digest.update(array.tobytes())
        else:
            digest.update(f"{type(part).__name__}:{part!r};".encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FeatureCache:
    """Thread-safe LRU mapping content keys to cached pipeline results.

    ``max_entries`` bounds memory: one entry is typically a window set
    or a per-domain feature dict for one window set.  The default of 32
    comfortably covers an archive sweep (one train + one test window
    set per dataset) while keeping worst-case residency modest.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """Return the cached value for ``key`` or ``None``, updating LRU."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats survive — they describe the session)."""
        with self._lock:
            self._entries.clear()
