"""The unified window→feature→score pipeline layer.

One set of contracts (:mod:`~repro.pipeline.contracts`), one memoized
feature pipeline (:mod:`~repro.pipeline.feature_pipeline`), one family
of adapters (:mod:`~repro.pipeline.adapters`), and the shared
point-score utilities (:mod:`~repro.pipeline.scores`).  ``core``,
``baselines``, ``eval``, and ``serve`` all build on this layer instead
of re-deriving windows/features or defining their own detector
contracts.  See ``docs/PIPELINE.md``.
"""

from .adapters import (
    BaselineWindowScorer,
    TriADWindowScorer,
    WindowScorerDetector,
    from_baseline,
    from_triad,
    from_window_scorer,
)
from .cache import CacheStats, FeatureCache, content_key
from .contracts import Detector, ScoringDetector, WindowScorer
from .feature_pipeline import FeaturePipeline, WindowFeatures, default_pipeline
from .features import DOMAINS, domain_channels, extract_all_domains, extract_domain
from .scores import calibrate_threshold, spread_window_scores

__all__ = [
    "Detector",
    "ScoringDetector",
    "WindowScorer",
    "TriADWindowScorer",
    "BaselineWindowScorer",
    "WindowScorerDetector",
    "from_triad",
    "from_baseline",
    "from_window_scorer",
    "FeatureCache",
    "CacheStats",
    "content_key",
    "FeaturePipeline",
    "WindowFeatures",
    "default_pipeline",
    "DOMAINS",
    "domain_channels",
    "extract_domain",
    "extract_all_domains",
    "calibrate_threshold",
    "spread_window_scores",
]
