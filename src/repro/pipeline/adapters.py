"""Adapters between the three canonical contracts.

One fitted model, any workload:

- :func:`from_triad` — a fitted :class:`repro.core.TriAD` as a
  :class:`~repro.pipeline.contracts.WindowScorer` for the serving
  chain (this is the scorer ``serve.registry`` re-exports as
  ``TriADWindowScorer``).
- :func:`from_baseline` — any fitted
  :class:`~repro.pipeline.contracts.ScoringDetector` (every
  ``repro.baselines`` detector) as a ``WindowScorer``, so the
  degradation chain can host baselines.
- :func:`from_window_scorer` — any ``WindowScorer`` as an offline
  ``Detector``/``ScoringDetector``, so serving-chain entries can be
  evaluated with ``run_on_archive``/``run_scores_on_archive`` under the
  paper's metric suite.

Everything is duck-typed against the contracts — this module imports
nothing from ``core``, ``baselines``, or ``serve`` at module level, so
the pipeline layer stays below all three.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .contracts import WindowScorer
from .feature_pipeline import FeaturePipeline, default_pipeline
from .scores import calibrate_threshold, spread_window_scores

__all__ = [
    "TriADWindowScorer",
    "BaselineWindowScorer",
    "WindowScorerDetector",
    "from_triad",
    "from_baseline",
    "from_window_scorer",
]


class TriADWindowScorer(WindowScorer):
    """Scores windows by representation-space distance to training data.

    At construction every training window is encoded once per domain;
    at serve time the whole cross-stream batch goes through a *single*
    encoder forward pass per domain and each window's score is its mean
    (over domains) nearest-neighbour distance to the training
    representations — the online analogue of TriAD's stage-2
    single-window selection.

    Training windows come from the public
    :meth:`repro.core.TriAD.train_windows` accessor, which shares the
    feature pipeline's window cache with the trainer — no private-state
    reach, no re-windowing.
    """

    name = "triad-encoder"

    def __init__(self, detector, train_stride: int | None = None) -> None:
        plan = detector.plan  # raises RuntimeError if not fit — fail at build time
        self._detector = detector
        self.window_length = int(plan.length)
        stride = train_stride or plan.stride
        train_windows, _ = detector.train_windows(stride=stride)
        reps = detector.representations(train_windows, cached=True)
        self._train_reps = {d: np.asarray(r, dtype=np.float64) for d, r in reps.items()}
        self._train_norms = {
            d: (r**2).sum(axis=1) for d, r in self._train_reps.items()
        }
        self._calibration: np.ndarray | None = None

    @classmethod
    def from_file(cls, path: str | os.PathLike, **kwargs) -> "TriADWindowScorer":
        """Build from a detector saved with :func:`repro.core.save_detector`."""
        from ..core.persistence import load_detector

        return cls(load_detector(path), **kwargs)

    def save(self, path: str | os.PathLike) -> None:
        """Persist the wrapped detector with :func:`repro.core.save_detector`."""
        from ..core.persistence import save_detector

        save_detector(self._detector, path)

    def score_windows(self, windows, batch) -> np.ndarray:
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        if windows.shape[1] != self.window_length:
            raise ValueError(
                f"expected windows of length {self.window_length}, "
                f"got {windows.shape[1]}"
            )
        reps = self._detector.representations(windows)
        scores = np.zeros(len(windows))
        for domain, r in reps.items():
            train = self._train_reps[domain]
            # Nearest-neighbour distance via the dot-product identity.
            sq = (
                (r**2).sum(axis=1)[:, None]
                + self._train_norms[domain][None, :]
                - 2.0 * (r @ train.T)
            )
            scores += np.sqrt(np.maximum(sq.min(axis=1), 0.0))
        return scores / max(len(reps), 1)

    def calibration_scores(self, length: int, stride: int) -> np.ndarray:
        """Leave-one-out NN distances among the training representations
        — the score distribution this model produces on normal data."""
        if self._calibration is None:
            total = None
            for domain, train in self._train_reps.items():
                norms = self._train_norms[domain]
                sq = norms[:, None] + norms[None, :] - 2.0 * (train @ train.T)
                np.fill_diagonal(sq, np.inf)
                distances = np.sqrt(np.maximum(sq.min(axis=1), 0.0))
                total = distances if total is None else total + distances
            self._calibration = total / max(len(self._train_reps), 1)
        return self._calibration


class BaselineWindowScorer(WindowScorer):
    """Serve any fitted :class:`ScoringDetector` as a window scorer.

    A window's score is the *peak* point score the wrapped detector
    assigns inside it — the statistic an alerting pipeline cares about.
    Calibration windows come from the detector's public
    ``train_series`` (when exposed) through the shared pipeline cache.
    """

    def __init__(self, detector, pipeline: FeaturePipeline | None = None) -> None:
        self._detector = detector
        self._pipeline = pipeline or default_pipeline()
        self.name = getattr(detector, "name", type(detector).__name__)
        self._calibration: dict[tuple[int, int], np.ndarray] = {}

    def score_windows(self, windows, batch) -> np.ndarray:
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        scores = np.empty(len(windows))
        for i, window in enumerate(windows):
            scores[i] = float(np.max(self._detector.score_series(window)))
        return scores

    def calibration_scores(self, length: int, stride: int) -> np.ndarray | None:
        try:
            train = self._detector.train_series
        except (AttributeError, RuntimeError):  # no accessor, or not fit yet
            return None
        if train is None or len(train) < length:
            return None
        key = (length, stride)
        if key not in self._calibration:
            windows, _ = self._pipeline.windows(np.asarray(train), length, stride)
            self._calibration[key] = self.score_windows(windows, ())
        return self._calibration[key]


@dataclass
class _OfflineWindow:
    """Stand-in for :class:`repro.serve.stream.ReadyWindow` so stateful
    window scorers (per-stream detectors) work outside the engine."""

    stream_id: str
    end_index: int
    window: np.ndarray
    mean: float
    std: float

    @property
    def start_index(self) -> int:
        return self.end_index - len(self.window)


class WindowScorerDetector:
    """Evaluate any :class:`WindowScorer` offline against the archive.

    Satisfies both ``Detector`` and ``ScoringDetector``: ``score_series``
    windows the series, scores every window in one batch, and spreads
    window scores back to points; ``predict`` thresholds at
    mean + ``threshold_sigma``·std of the training-series scores (the
    same label-free calibration baselines use).  This is how a serving
    degradation-chain entry gets paper-protocol numbers.
    """

    def __init__(
        self,
        scorer: WindowScorer,
        window_length: int,
        stride: int,
        threshold_sigma: float = 3.0,
        pipeline: FeaturePipeline | None = None,
    ) -> None:
        self.scorer = scorer
        self.window_length = int(window_length)
        self.stride = int(stride)
        self.threshold_sigma = threshold_sigma
        self.name = getattr(scorer, "name", type(scorer).__name__)
        self._pipeline = pipeline or default_pipeline()
        self._train_series: np.ndarray | None = None
        self._replays = 0

    def fit(self, train_series: np.ndarray) -> "WindowScorerDetector":
        self._train_series = np.asarray(train_series, dtype=np.float64)
        return self

    def _batch(self, windows: np.ndarray, starts: np.ndarray, tag: str):
        return [
            _OfflineWindow(
                stream_id=tag,
                end_index=int(start) + len(window),
                window=window,
                mean=float(window.mean()),
                std=float(window.std()),
            )
            for window, start in zip(windows, starts)
        ]

    def score_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        length = min(self.window_length, len(series))
        windows, starts = self._pipeline.windows(series, length, self.stride)
        # A fresh stream id per replay keeps stateful (per-stream)
        # scorers from mixing this series with a previous one.
        self._replays += 1
        batch = self._batch(windows, starts, f"{self.name}-offline-{self._replays}")
        scores = np.asarray(
            self.scorer.score_windows(windows, batch), dtype=np.float64
        )
        return spread_window_scores(scores, starts, length, len(series))

    def predict(self, test_series: np.ndarray) -> np.ndarray:
        if self._train_series is None:
            raise RuntimeError(f"{self.name} must be fit() before predict()")
        test_scores = self.score_series(np.asarray(test_series, dtype=np.float64))
        train_scores = self.score_series(self._train_series)
        threshold = calibrate_threshold(train_scores, self.threshold_sigma)
        predictions = (test_scores > threshold).astype(np.int64)
        if not predictions.any():
            predictions[int(np.argmax(test_scores))] = 1
        return predictions


def from_triad(detector, train_stride: int | None = None) -> TriADWindowScorer:
    """A fitted :class:`repro.core.TriAD` as a serving window scorer."""
    return TriADWindowScorer(detector, train_stride=train_stride)


def from_baseline(
    detector, pipeline: FeaturePipeline | None = None
) -> BaselineWindowScorer:
    """A fitted scoring detector as a serving window scorer."""
    return BaselineWindowScorer(detector, pipeline=pipeline)


def from_window_scorer(
    scorer: WindowScorer,
    window_length: int,
    stride: int,
    threshold_sigma: float = 3.0,
    pipeline: FeaturePipeline | None = None,
) -> WindowScorerDetector:
    """A serving window scorer as an offline archive detector."""
    return WindowScorerDetector(
        scorer,
        window_length=window_length,
        stride=stride,
        threshold_sigma=threshold_sigma,
        pipeline=pipeline,
    )
