#!/usr/bin/env python
"""Benchmark bulk scoring through ``repro.jobs`` and write ``BENCH_jobs.json``.

Scores a >= 1M-point synthetic series with the spectral-residual window
scorer along two paths:

- **single-process per-window loop** — the pre-jobs bulk path: every
  window scored by one ``score_series`` call through
  :class:`repro.pipeline.adapters.BaselineWindowScorer`, the idiom the
  eval/serve layers used for offline bulk scoring before the job
  subsystem existed;
- **jobs fabric** — :class:`repro.jobs.JobManager` with 4 workers:
  the series chunked into overlapping window-preserving chunks, each
  chunk's windows scored in one batched vectorized call
  (:class:`repro.jobs.registry.BatchedSpectralResidualScorer`), every
  chunk journaled, and the result stitched.

The acceptance gate requires the jobs path to be ``min_speedup``
(default 2.5) times faster AND its stitched scores to be *exactly*
``np.array_equal`` to a single-pass batched reference (all windows in
one call, no chunking, no journal) — chunking must not move a bit.

The box this repo's benches run on has a single CPU (``cpu_count`` is
recorded in the report), so the win is algorithmic — batched
vectorized chunk scoring versus the per-window Python loop — the same
honest framing as ``BENCH_serve.json`` (micro-batching) and
``BENCH_pipeline.json`` (memoization).  The 1-worker chunked time is
reported alongside for transparency; on a multi-core box the 4-worker
fork pool adds parallel speedup on top.

    python scripts/bench_jobs.py [--out BENCH_jobs.json]
                                 [--min-speedup 2.5] [--repeats 2]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.baselines import SpectralResidualDetector  # noqa: E402
from repro.jobs import JobManager, JobSpec  # noqa: E402
from repro.jobs.registry import BatchedSpectralResidualScorer  # noqa: E402
from repro.pipeline.adapters import BaselineWindowScorer  # noqa: E402
from repro.pipeline.scores import spread_window_scores  # noqa: E402
from repro.signal.windows import sliding_windows  # noqa: E402

N_POINTS = 4_194_304
WINDOW, STRIDE = 256, 64
CHUNK_WINDOWS = 1024
WORKERS = 4


def bench_series() -> np.ndarray:
    rng = np.random.default_rng(11)
    t = np.arange(N_POINTS)
    series = (
        np.sin(2 * np.pi * t / 512)
        + 0.3 * np.sin(2 * np.pi * t / 64)
        + 0.05 * rng.standard_normal(N_POINTS)
    )
    series[400_000:400_050] += 4.0  # one planted anomaly for sanity
    return series


def per_window_loop(series: np.ndarray) -> tuple[np.ndarray, float]:
    """The pre-jobs bulk path: one ``score_series`` call per window."""
    scorer = BaselineWindowScorer(SpectralResidualDetector().fit(series))
    windows, starts = sliding_windows(series, WINDOW, STRIDE)
    start = time.perf_counter()
    window_scores = scorer.score_windows(windows, ())
    scores = spread_window_scores(window_scores, starts, WINDOW, len(series))
    elapsed = time.perf_counter() - start
    return scores, elapsed


def single_pass_reference(series: np.ndarray) -> tuple[np.ndarray, float]:
    """All windows in one batched call — the exactness reference."""
    scorer = BatchedSpectralResidualScorer()
    windows, starts = sliding_windows(series, WINDOW, STRIDE)
    start = time.perf_counter()
    window_scores = scorer.score_windows(windows, ())
    scores = spread_window_scores(window_scores, starts, WINDOW, len(series))
    elapsed = time.perf_counter() - start
    return scores, elapsed


def jobs_path(series: np.ndarray, workers: int) -> tuple[np.ndarray, float]:
    """Submit + run + stitch through the job fabric, fresh store."""
    with tempfile.TemporaryDirectory(prefix="bench-jobs-") as root:
        manager = JobManager(root, workers=workers)
        spec = JobSpec(
            detector="spectral-residual",
            window_length=WINDOW,
            stride=STRIDE,
            chunk_windows=CHUNK_WINDOWS,
        )
        start = time.perf_counter()
        record = manager.submit_and_run(spec, series)
        elapsed = time.perf_counter() - start
        assert record.state == "SUCCEEDED", record.error
        return manager.result(record.job_id), elapsed


def run_bench(repeats: int = 2, min_speedup: float = 2.5) -> dict:
    series = bench_series()

    reference, _ = single_pass_reference(series)
    loop_scores, _ = per_window_loop(series)

    loop_times, jobs_times, jobs_serial_times, single_pass_times = [], [], [], []
    jobs_scores = None
    for _ in range(repeats):
        _, elapsed = per_window_loop(series)
        loop_times.append(elapsed)
        _, elapsed = single_pass_reference(series)
        single_pass_times.append(elapsed)
        jobs_scores, elapsed = jobs_path(series, workers=WORKERS)
        jobs_times.append(elapsed)
        _, elapsed = jobs_path(series, workers=1)
        jobs_serial_times.append(elapsed)

    loop_s = min(loop_times)
    jobs_s = min(jobs_times)
    speedup = loop_s / jobs_s
    exact = bool(np.array_equal(jobs_scores, reference))
    loop_drift = float(np.max(np.abs(loop_scores - reference)))

    report = {
        "config": {
            "n_points": N_POINTS,
            "window": WINDOW,
            "stride": STRIDE,
            "chunk_windows": CHUNK_WINDOWS,
            "workers": WORKERS,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
        "per_window_loop_s": loop_s,
        "single_pass_batched_s": min(single_pass_times),
        "jobs_4workers_s": jobs_s,
        "jobs_1worker_s": min(jobs_serial_times),
        "speedup_x": speedup,
        "stitched_equals_single_pass": exact,
        # per-window loop uses np.convolve smoothing vs the batched
        # sliding-view mean: same math, last-ulp float drift expected
        "per_window_loop_max_abs_drift": loop_drift,
        "gate": {
            "min_speedup_x": min_speedup,
            "require_exact_stitch": True,
            "passed": bool(speedup >= min_speedup and exact),
        },
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_jobs.json")
    parser.add_argument("--min-speedup", type=float, default=2.5)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    report = run_bench(repeats=args.repeats, min_speedup=args.min_speedup)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"per-window loop : {report['per_window_loop_s']:.3f}s")
    print(f"jobs (4 workers): {report['jobs_4workers_s']:.3f}s")
    print(f"jobs (1 worker) : {report['jobs_1worker_s']:.3f}s")
    print(f"single pass     : {report['single_pass_batched_s']:.3f}s")
    print(f"speedup         : {report['speedup_x']:.2f}x "
          f"(gate {report['gate']['min_speedup_x']}x)")
    print(f"exact stitch    : {report['stitched_equals_single_pass']}")
    print(f"wrote {args.out}")
    return 0 if report["gate"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
