#!/usr/bin/env python
"""Run the observability hot-path benchmark suite and write BENCH_obs.json.

Invokes ``benchmarks/bench_obs_hotpaths.py`` under pytest-benchmark,
then condenses the full report into a small, diffable baseline at the
repo root::

    python scripts/bench_baseline.py [--out BENCH_obs.json]

The condensed file keeps mean/min/stddev/rounds per benchmark plus the
trainer instrumentation overhead ratio (obs-on mean / obs-off mean),
which the acceptance gate requires to stay under 1.05.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_suite(raw_json: Path) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_obs_hotpaths.py"),
        "-m", "bench",
        "--benchmark-only",
        "--benchmark-warmup=off",
        f"--benchmark-json={raw_json}",
        "-q",
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def condense(raw_json: Path) -> dict:
    report = json.loads(raw_json.read_text())
    benchmarks: dict[str, dict] = {}
    for entry in report.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks[entry["name"]] = {
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
    payload: dict = {
        "suite": "benchmarks/bench_obs_hotpaths.py",
        "machine": report.get("machine_info", {}).get("machine"),
        "python": report.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }
    off = benchmarks.get("test_trainer_epoch_obs_off", {}).get("mean_s")
    on = benchmarks.get("test_trainer_epoch_obs_on", {}).get("mean_s")
    if off and on:
        payload["trainer_obs_overhead_ratio"] = round(on / off, 4)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_obs.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "benchmark-raw.json"
        code = run_suite(raw_json)
        if code != 0:
            print(f"benchmark suite failed (exit {code})", file=sys.stderr)
            return code
        payload = condense(raw_json)

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for name, stats in sorted(payload["benchmarks"].items()):
        mean = stats.get("mean_s")
        print(f"  {name}: mean {mean * 1e3:.3f}ms" if mean is not None
              else f"  {name}: no stats")
    ratio = payload.get("trainer_obs_overhead_ratio")
    if ratio is not None:
        print(f"  trainer obs overhead ratio: {ratio:.4f} (gate: < 1.05)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
