#!/usr/bin/env python
"""Run the adaptive-serving benchmark suite and write BENCH_adapt.json.

Invokes ``benchmarks/bench_adapt.py`` under pytest-benchmark, condenses
the report into a small, diffable baseline at the repo root, and
enforces the adaptation acceptance gates::

    python scripts/bench_adapt.py [--out BENCH_adapt.json]
                                  [--max-overhead-pct 10.0]

The condensed file keeps mean/min/stddev/rounds per benchmark plus the
derived numbers:

- ``adaptation_overhead_pct`` — (chaos-drill replay mean / idle-
  controller replay mean - 1) * 100: the cost of drift handling,
  guarded retraining, and shadow evaluation on top of the identical
  replay where the loop never fires; the gate requires < 10%;
- ``time_to_recovery_s`` vs ``budget_seconds`` — wall time of the
  promoted decision (retrain + shadow evaluation + swap) against the
  controller's configured RunBudget; the gate requires recovery to fit
  inside the budget;
- ``wrapper_overhead_pct`` — idle-controller replay vs plain engine
  replay (informational: per-point bookkeeping of wrapping ingestion).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_suite(raw_json: Path) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_adapt.py"),
        "-m", "bench",
        "--benchmark-only",
        "--benchmark-warmup=off",
        f"--benchmark-json={raw_json}",
        "-q",
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def condense(raw_json: Path) -> dict:
    report = json.loads(raw_json.read_text())
    benchmarks: dict[str, dict] = {}
    extra: dict[str, dict] = {}
    for entry in report.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks[entry["name"]] = {
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
        extra[entry["name"]] = entry.get("extra_info", {})
    payload: dict = {
        "suite": "benchmarks/bench_adapt.py",
        "machine": report.get("machine_info", {}).get("machine"),
        "python": report.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }
    plain = benchmarks.get("test_replay_plain_engine", {}).get("mean_s")
    idle = benchmarks.get("test_replay_idle_controller", {}).get("mean_s")
    drill = benchmarks.get("test_chaos_drill_self_heals", {}).get("mean_s")
    if idle and drill:
        payload["adaptation_overhead_pct"] = round((drill / idle - 1.0) * 100, 2)
    if plain and idle:
        payload["wrapper_overhead_pct"] = round((idle / plain - 1.0) * 100, 2)
    drill_extra = extra.get("test_chaos_drill_self_heals", {})
    for key in ("time_to_recovery_s", "budget_seconds",
                "detection_to_promotion_points", "decisions"):
        if key in drill_extra:
            payload[key] = drill_extra[key]
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_adapt.json")
    parser.add_argument("--max-overhead-pct", type=float, default=10.0,
                        help="gate: max replay slowdown from the adaptation "
                             "loop, percent (default 10)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "benchmark-raw.json"
        code = run_suite(raw_json)
        if code != 0:
            print(f"benchmark suite failed (exit {code})", file=sys.stderr)
            return code
        payload = condense(raw_json)

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    failed = False
    overhead = payload.get("adaptation_overhead_pct")
    if overhead is None:
        print("gate: adaptation benchmarks missing from report", file=sys.stderr)
        return 1
    print(f"adaptation overhead: {overhead:+.2f}% "
          f"(gate: < {args.max_overhead_pct}%)")
    if overhead >= args.max_overhead_pct:
        print("gate FAILED: adaptation loop slows replay beyond the cap",
              file=sys.stderr)
        failed = True
    recovery = payload.get("time_to_recovery_s")
    budget = payload.get("budget_seconds")
    if recovery is None or budget is None:
        print("gate: chaos drill recovery info missing", file=sys.stderr)
        return 1
    print(f"time to recovery: {recovery * 1e3:.2f}ms "
          f"(gate: < RunBudget {budget:.1f}s)")
    if recovery >= budget:
        print("gate FAILED: recovery blew the configured RunBudget",
              file=sys.stderr)
        failed = True
    if payload.get("wrapper_overhead_pct") is not None:
        print(f"wrapper overhead (info): {payload['wrapper_overhead_pct']:+.2f}%")
    if failed:
        return 1
    print("gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
