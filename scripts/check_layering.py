#!/usr/bin/env python
"""Import-layering lint for ``src/repro``.

Enforces the layer order documented in ``docs/PIPELINE.md``: a package
may import (at module load) only from *strictly lower* layers.  This is
what keeps ``repro.pipeline`` importable below ``core``/``baselines``/
``eval``/``serve`` and prevents the contract sprawl this lint was added
alongside (four layers each defining their own detector protocol) from
growing back.

    0  data, signal, nn, metrics, runtime, validation   (leaves)
    1  obs, augment
    2  discord
    3  pipeline          (the canonical window/feature/contract layer)
    4  core, baselines
    5  eval, serve
    6  jobs              (bulk-inference fabric over pipeline/eval)
    7  viz, cli          (presentation; imports lazily anyway)

``repro.jobs`` additionally faces a *consumer* restriction
(``RESTRICTED_CONSUMERS``): only ``cli`` and ``serve`` may import it,
at any scope.  The job fabric is an orchestration shell around the
lower layers — letting eval/core reach back into it would create
exactly the cyclic "everything drives everything" coupling the
subsystem was built to avoid (eval exposes ``execute_unit`` and jobs
drives it, never the reverse).  ``serve`` earned the exemption when
the shard fabric started building worker scorers through the
string-named ``jobs.registry`` detectors; the import must still be
function-scoped because serve sits *below* jobs in the layer map.

Note: this order deviates from an idealized "observability above the
model" stacking — ``core`` instruments itself through ``obs`` and
guards training through ``runtime``, so both sit *below* it here.  The
lint encodes the dependency reality and keeps it a DAG.

Within ``repro.serve`` a second, finer map (``SERVE_SUBLAYERS``) keeps
the serving subsystem itself a DAG now that the shard fabric sits
between the engine and the adaptive controller (which offloads
retrains through it):

    0  stream            (ring buffers, per-stream window state)
    1  stores            (pluggable stream-state store backends)
    2  drift, registry   (monitors; versioned chain)
    3  engine            (micro-batching scorer; state externalization)
    4  shard             (hash ring, worker processes, router)
    5  adapt             (drift -> retrain -> promote controller)
    6  supervisor        (fleet health/scaling policy over the router)
    7  replay            (harness + chaos injectors, drives adapt)
    8  __init__          (facade)

Within ``repro.discord`` a third map (``DISCORD_SUBLAYERS``) keeps the
discord subsystem a DAG around the shared kernel layer: scalar
primitives at the bottom, the batched kernels above them, then the
algorithms in dependency order (DRAG builds on brute force, MERLIN on
DRAG, MERLIN++ on MERLIN, motifs on the matrix profile):

    0  distance          (scalar primitives; reference NN oracle)
    1  kernels           (SeriesContext, batched sweeps, mode dispatch)
    2  brute             (Discord dataclass; exhaustive scan)
    3  drag, matrix_profile
    4  damp, merlin
    5  merlinpp
    6  streaming, topk, motifs
    7  __init__          (facade)

Packages listed in ``IMPORT_LEAF`` (currently ``nn``) face a stricter
rule: no ``repro.*`` import at *any* scope — the lazy-import escape
hatch below does not apply to them.

Only module-scope imports count for the layer maps.  Function-level
imports are the sanctioned escape hatch for presentation-layer laziness and genuine
back-references (e.g. ``pipeline.adapters`` loading ``core.persistence``
inside ``from_file``); ``if TYPE_CHECKING:`` blocks are typing-only and
exempt.

Exit status 0 when clean, 1 with one ``file:line`` diagnostic per
violation otherwise.  Run from anywhere::

    python scripts/check_layering.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

LAYERS: dict[str, int] = {
    "data": 0,
    "signal": 0,
    "nn": 0,
    "metrics": 0,
    "runtime": 0,
    "validation": 0,
    "obs": 1,
    "augment": 1,
    "discord": 2,
    "pipeline": 3,
    "core": 4,
    "baselines": 4,
    "eval": 5,
    "serve": 5,
    "jobs": 6,
    "viz": 7,
    "cli": 7,
    # The facade re-exports the public API and the entry point launches
    # it; both sit above everything by construction.
    "__init__": 8,
    "__main__": 8,
}

# Consumer restrictions: packages only the listed consumers may import,
# at ANY scope (the function-level escape hatch does not apply).  The
# job fabric orchestrates the layers below it; nothing below may grow a
# dependency on it, and even the facade stays clean so ``import repro``
# never drags in multiprocessing machinery.
RESTRICTED_CONSUMERS: dict[str, frozenset[str]] = {
    "jobs": frozenset({"cli", "serve"}),
}

# Packages that must stay *import-leaves*: no ``repro.*`` import at ANY
# scope, function-level included.  ``repro.nn`` is the kernel layer —
# the layer rule above already blocks module-scope imports, but a lazy
# function-level import would silently couple the hot training loops
# (and every worker process the data-parallel trainer forks) to the
# rest of the tree, so leaves get the stricter whole-file check.
IMPORT_LEAF = {"nn"}

# Intra-``repro.serve`` sublayers: same strictly-lower rule, applied to
# the serving subsystem's own modules (see module docstring).
SERVE_SUBLAYERS: dict[str, int] = {
    "stream": 0,
    "stores": 1,
    "drift": 2,
    "registry": 2,
    "engine": 3,
    "shard": 4,
    "adapt": 5,
    "supervisor": 6,
    "replay": 7,
    "__init__": 8,
}

# Intra-``repro.discord`` sublayers: everything sits on the shared
# kernel layer; the scalar primitives below it stay import-free so the
# kernels' reference oracle has no dependencies (see module docstring).
DISCORD_SUBLAYERS: dict[str, int] = {
    "distance": 0,
    "kernels": 1,
    "brute": 2,
    "drag": 3,
    "matrix_profile": 3,
    "damp": 4,
    "merlin": 4,
    "merlinpp": 5,
    "streaming": 6,
    "topk": 6,
    "motifs": 6,
    "__init__": 7,
}

# Packages with an intra-package sublayer map, enforced with the same
# strictly-lower rule as the top-level layers.
SUBLAYERS: dict[str, dict[str, int]] = {
    "serve": SERVE_SUBLAYERS,
    "discord": DISCORD_SUBLAYERS,
}


def _top_package(path: Path, package_root: Path) -> str:
    """``repro/<pkg>/...`` -> ``<pkg>``; ``repro/<mod>.py`` -> ``<mod>``."""
    rel = path.relative_to(package_root)
    return rel.parts[0].removesuffix(".py")


def _is_type_checking(test: ast.expr) -> bool:
    node = test
    if isinstance(node, ast.Attribute):
        return node.attr == "TYPE_CHECKING"
    return isinstance(node, ast.Name) and node.id == "TYPE_CHECKING"


def _imported_packages(
    node: ast.Import | ast.ImportFrom, path: Path, package_root: Path
):
    """Yield the ``repro`` top-level package(s) an import node touches."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1]
        return
    if node.level == 0:
        parts = (node.module or "").split(".")
        if parts[0] != "repro":
            return
        remainder = parts[1:]
    else:
        rel = path.relative_to(package_root)
        base = list(rel.parts[:-1])
        hops = node.level - 1
        if hops > len(base):
            return  # escapes the package; not ours to judge
        base = base[: len(base) - hops] if hops else base
        remainder = base + ((node.module or "").split(".") if node.module else [])
    if remainder:
        yield remainder[0]
    else:
        # ``from repro import x`` / ``from .. import x`` — the names
        # themselves are the subpackages.
        for alias in node.names:
            yield alias.name


def _package_submodules(
    node: ast.Import | ast.ImportFrom,
    path: Path,
    package_root: Path,
    package: str,
):
    """Yield the ``repro.<package>`` submodule(s) an import node touches."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[:2] == ["repro", package] and len(parts) > 2:
                yield parts[2]
        return
    if node.level == 0:
        parts = (node.module or "").split(".")
        if parts[:2] != ["repro", package]:
            return
        remainder = parts[2:]
    else:
        rel = path.relative_to(package_root)
        base = list(rel.parts[:-1])
        hops = node.level - 1
        if hops > len(base):
            return
        base = base[: len(base) - hops] if hops else base
        if base != [package]:
            return  # relative import reaching outside the package
        remainder = (node.module or "").split(".") if node.module else []
    if remainder:
        yield remainder[0]
    else:
        # ``from repro.<pkg> import x`` / ``from . import x`` inside the
        # package — the names themselves are the submodules.
        for alias in node.names:
            yield alias.name


def _module_scope_imports(tree: ast.Module, path: Path, package_root: Path):
    """(node, packages) for every import that runs at module load."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If):
            if _is_type_checking(node.test):
                continue
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, (ast.Try, ast.With)):
            stack.extend(
                child for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.stmt)
            )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node, list(_imported_packages(node, path, package_root))


def check(package_root: Path = PACKAGE_ROOT) -> list[str]:
    """Return one diagnostic string per layering violation."""
    violations: list[str] = []
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        where = path.relative_to(package_root.parent)
        source_pkg = _top_package(path, package_root)
        source_layer = LAYERS.get(source_pkg)
        if source_layer is None:
            violations.append(
                f"{where}:1: package {source_pkg!r} is not in the layer "
                f"map (scripts/check_layering.py)"
            )
            continue
        source_sub = None
        sub_map = SUBLAYERS.get(source_pkg)
        if sub_map is not None and path.parent.name == source_pkg:
            source_sub = sub_map.get(path.stem)
            if source_sub is None:
                violations.append(
                    f"{where}:1: {source_pkg} module {path.stem!r} is not in "
                    f"the {source_pkg} sublayer map (scripts/check_layering.py)"
                )
        tree = ast.parse(path.read_text(), filename=str(path))
        for restricted, allowed in RESTRICTED_CONSUMERS.items():
            if source_pkg == restricted or source_pkg in allowed:
                continue
            for node in ast.walk(tree):
                if not isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                for target in _imported_packages(node, path, package_root):
                    if target == restricted:
                        violations.append(
                            f"{where}:{node.lineno}: {source_pkg} imports "
                            f"repro.{restricted}, but only "
                            f"{sorted(allowed)} may (any scope) — the "
                            f"{restricted} fabric drives lower layers, "
                            f"never the reverse"
                        )
        if source_pkg in IMPORT_LEAF:
            for node in ast.walk(tree):
                if not isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                for target in _imported_packages(node, path, package_root):
                    if target == source_pkg:
                        continue
                    violations.append(
                        f"{where}:{node.lineno}: {source_pkg} is an "
                        f"import-leaf but imports repro.{target} — leaf "
                        f"packages may not import the rest of repro at "
                        f"any scope"
                    )
            continue
        for node, targets in _module_scope_imports(tree, path, package_root):
            for target in targets:
                if target == source_pkg:
                    continue
                target_layer = LAYERS.get(target)
                if target_layer is None:
                    violations.append(
                        f"{where}:{node.lineno}: import of unknown package "
                        f"repro.{target}"
                    )
                elif target_layer >= source_layer:
                    violations.append(
                        f"{where}:{node.lineno}: {source_pkg} (layer "
                        f"{source_layer}) imports repro.{target} (layer "
                        f"{target_layer}) at module scope — only strictly "
                        f"lower layers are allowed; use a function-level "
                        f"import if the dependency is genuinely lazy"
                    )
            if source_sub is None:
                continue
            for target in _package_submodules(node, path, package_root, source_pkg):
                if target == path.stem:
                    continue
                target_sub = sub_map.get(target)
                if target_sub is None:
                    violations.append(
                        f"{where}:{node.lineno}: import of unknown "
                        f"{source_pkg} module repro.{source_pkg}.{target}"
                    )
                elif target_sub >= source_sub:
                    violations.append(
                        f"{where}:{node.lineno}: {source_pkg}.{path.stem} "
                        f"(sublayer {source_sub}) imports "
                        f"repro.{source_pkg}.{target} (sublayer {target_sub}) "
                        f"at module scope — only strictly lower "
                        f"{source_pkg} sublayers are allowed"
                    )
    return violations


def main() -> int:
    violations = check()
    for line in violations:
        print(line)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
