"""Resilience smoke: a 3-dataset micro-archive sweep with one injected
fault must complete, attribute the failure, and resume from its journal
without re-running completed units.

Runs standalone (``PYTHONPATH=src python scripts/smoke_resilience.py``)
and under the tier-1 pytest run via ``tests/runtime/test_smoke_resilience.py``
(marker: ``resilience``), so regressions in the runtime layer fail fast.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path


def run_smoke() -> dict:
    """Execute the scenario; raise AssertionError on any regression."""
    from repro.baselines import OneLinerDetector
    from repro.data import make_archive
    from repro.eval import SweepCheckpoint, run_on_archive
    from repro.runtime import Fault, FaultPlan, RetryPolicy, chaos_factory

    archive = make_archive(size=3, seed=7, train_length=400, test_length=500)
    faulty = archive[1].name
    plan = FaultPlan([Fault(dataset=faulty, stage="fit", mode="raise", count=None)])
    policy = RetryPolicy(max_retries=1)

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "sweep.jsonl"

        agg = run_on_archive(
            "one-liner",
            chaos_factory(lambda s: OneLinerDetector(), plan, archive),
            archive,
            policy=policy,
            checkpoint=SweepCheckpoint(journal),
        )
        assert len(agg.failures) == 1, f"expected 1 failure, got {len(agg.failures)}"
        failure = agg.failures[0]
        assert failure.dataset == faulty and failure.stage == "fit", failure.describe()
        assert len(agg.per_run) == 2, "survivors must still be evaluated"
        assert abs(agg.coverage - 2 / 3) < 1e-9, f"coverage {agg.coverage}"

        # Resume: every recorded unit (results and the failure) is spliced
        # from the journal; nothing re-runs.
        calls = {"builds": 0}

        def counting_factory(seed: int) -> OneLinerDetector:
            calls["builds"] += 1
            return OneLinerDetector()

        resumed = run_on_archive(
            "one-liner",
            counting_factory,
            archive,
            policy=policy,
            checkpoint=SweepCheckpoint(journal),
        )
        assert calls["builds"] == 0, f"resume re-ran {calls['builds']} unit(s)"
        assert resumed.mean == agg.mean and resumed.std == agg.std

        # Clear the failure; only the faulty unit re-runs (fault-free now)
        # and the sweep heals to full coverage.
        assert SweepCheckpoint(journal).clear_failures() == 1
        healed = run_on_archive(
            "one-liner",
            counting_factory,
            archive,
            policy=policy,
            checkpoint=SweepCheckpoint(journal),
        )
        assert calls["builds"] == 1, "only the failed unit should re-run"
        assert not healed.failures and healed.coverage == 1.0

    return {
        "failures": len(agg.failures),
        "survivors": len(agg.per_run),
        "coverage": agg.coverage,
        "healed_coverage": healed.coverage,
    }


def main() -> int:
    summary = run_smoke()
    print(f"resilience smoke: OK {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
