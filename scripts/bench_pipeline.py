#!/usr/bin/env python
"""Benchmark the memoized feature pipeline and write ``BENCH_pipeline.json``.

Compares two complete training runs on an extraction-heavy
configuration (long windows, shallow encoder — the regime where
tri-domain feature extraction rivals the encoder forward/backward cost):

- **legacy** — a faithful copy of the pre-pipeline epoch loop: original
  windows re-extracted *once per batch per epoch*, residual
  decomposition looping Python-level per window
  (``np.stack([residual_component(w, p) for w in windows])``);
- **memoized** — the current :func:`repro.core.trainer.train_encoder`
  through a fresh :class:`repro.pipeline.FeaturePipeline`: per-domain
  features computed once per window set and sliced per batch, residual
  decomposition batched.

Both runs consume the RNG stream in the identical order, so their
per-epoch losses must agree to ``loss_tolerance`` (in practice they are
bit-equal; the pipeline tests assert the underlying exact identities).
The acceptance gate requires ``speedup_x >= min_speedup`` (default 1.5).

    python scripts/bench_pipeline.py [--out BENCH_pipeline.json]
                                     [--min-speedup 1.5] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.augment import augment_batch  # noqa: E402
from repro.core.config import TriADConfig  # noqa: E402
from repro.core.encoder import TriDomainEncoder  # noqa: E402
from repro.core.losses import total_contrastive_loss  # noqa: E402
from repro.pipeline import FeatureCache, FeaturePipeline  # noqa: E402
from repro.signal.decompose import residual_component  # noqa: E402
from repro.signal.fft import frequency_features  # noqa: E402
from repro.signal.normalize import zscore  # noqa: E402
from repro.signal.windows import plan_windows, sliding_windows  # noqa: E402

# Extraction-heavy regime: 512-point windows make the tri-domain
# extraction cost comparable to a depth-1, width-2 encoder pass, so the
# bench isolates what the memo cache actually buys the epoch loop.
BENCH_CONFIG = TriADConfig(
    depth=1,
    hidden_dim=2,
    epochs=4,
    batch_size=32,
    max_window=512,
    seed=0,
)
SERIES_PERIOD = 256
SERIES_LENGTH = 5120


def bench_series() -> np.ndarray:
    rng = np.random.default_rng(7)
    t = np.arange(SERIES_LENGTH)
    return (
        np.sin(2 * np.pi * t / SERIES_PERIOD)
        + 0.3 * np.sin(2 * np.pi * t / (SERIES_PERIOD / 4))
        + 0.02 * rng.standard_normal(SERIES_LENGTH)
    )


# ----------------------------------------------------------------------
# The pre-pipeline epoch loop, reproduced verbatim (modulo obs spans and
# the divergence guard, which fire identically on both sides and are
# benign on this well-conditioned series).
# ----------------------------------------------------------------------
def _legacy_extract_all_domains(windows, period, domains):
    windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
    features = {}
    for domain in domains:
        if domain == "temporal":
            features[domain] = zscore(windows, axis=-1)[:, None, :]
        elif domain == "frequency":
            features[domain] = frequency_features(windows)
        elif domain == "residual":
            features[domain] = np.stack(
                [residual_component(w, period) for w in windows]
            )[:, None, :]
        else:
            raise KeyError(f"unknown domain {domain!r}")
    return features


def _batches(count, batch_size, rng):
    order = rng.permutation(count)
    for start in range(0, count, batch_size):
        batch = order[start : start + batch_size]
        if len(batch) >= 2:
            yield batch


def _legacy_epoch_loss(encoder, windows, period, config, rng, optimizer):
    losses = []
    for batch_idx in _batches(len(windows), config.batch_size, rng):
        batch = windows[batch_idx]
        augmented = augment_batch(batch, rng)
        original_features = _legacy_extract_all_domains(
            batch, period, config.domains
        )
        augmented_features = _legacy_extract_all_domains(
            augmented, period, config.domains
        )
        r_orig = encoder(original_features)
        r_aug = encoder(augmented_features)
        loss = total_contrastive_loss(
            r_orig,
            r_aug,
            alpha=config.alpha,
            temperature=config.temperature,
            use_intra=config.use_intra,
            use_inter=config.use_inter,
        )
        value = float(loss.data)
        if optimizer is not None and np.isfinite(value):
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(encoder.parameters(), config.grad_clip)
            optimizer.step()
        losses.append(value)
    return float(np.mean(losses)) if losses else 0.0


def legacy_train(train_series: np.ndarray, config: TriADConfig):
    """Pre-pipeline training loop: extract per batch, per epoch."""
    rng = np.random.default_rng(config.seed)
    plan = plan_windows(
        train_series,
        periods_per_window=config.periods_per_window,
        stride_fraction=config.stride_fraction,
        min_length=config.min_window,
        max_length=config.max_window,
    )
    windows, _ = sliding_windows(train_series, plan.length, plan.stride)
    count = len(windows)
    val_count = (
        max(int(round(count * config.validation_fraction)), 1) if count > 4 else 0
    )
    order = rng.permutation(count)
    val_windows = windows[order[:val_count]]
    fit_windows = windows[order[val_count:]]

    encoder = TriDomainEncoder(config, rng=np.random.default_rng(config.seed))
    optimizer = nn.Adam(encoder.parameters(), lr=config.learning_rate)
    train_losses, val_losses = [], []
    for _ in range(config.epochs):
        encoder.train()
        train_losses.append(
            _legacy_epoch_loss(
                encoder, fit_windows, plan.period, config, rng, optimizer
            )
        )
        if val_count:
            encoder.eval()
            with nn.no_grad():
                val_losses.append(
                    _legacy_epoch_loss(
                        encoder, val_windows, plan.period, config, rng, None
                    )
                )
    return train_losses, val_losses, plan


def memoized_train(train_series: np.ndarray, config: TriADConfig):
    """Current trainer through a fresh (cold) pipeline cache."""
    from repro.core.trainer import train_encoder

    pipeline = FeaturePipeline(cache=FeatureCache())
    result = train_encoder(train_series, config, pipeline=pipeline)
    return result.train_losses, result.val_losses, result.plan


def run_bench(repeats: int = 3, min_speedup: float = 1.5,
              loss_tolerance: float = 1e-9) -> dict:
    series = bench_series()
    config = BENCH_CONFIG

    legacy_losses, legacy_val, plan = legacy_train(series, config)
    new_losses, new_val, new_plan = memoized_train(series, config)
    assert plan == new_plan, f"plans diverged: {plan} vs {new_plan}"
    loss_diff = float(
        max(
            np.abs(np.array(legacy_losses) - np.array(new_losses)).max(),
            np.abs(np.array(legacy_val) - np.array(new_val)).max(),
        )
    )

    legacy_times, memo_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        legacy_train(series, config)
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        memoized_train(series, config)
        memo_times.append(time.perf_counter() - start)

    legacy_s = min(legacy_times)
    memo_s = min(memo_times)
    speedup = legacy_s / memo_s
    return {
        "config": {
            "depth": config.depth,
            "hidden_dim": config.hidden_dim,
            "epochs": config.epochs,
            "batch_size": config.batch_size,
            "max_window": config.max_window,
            "series_length": SERIES_LENGTH,
            "series_period": SERIES_PERIOD,
            "plan": {
                "length": plan.length,
                "stride": plan.stride,
                "period": plan.period,
            },
            "repeats": repeats,
        },
        "legacy_epoch_loop_s": legacy_s,
        "memoized_epoch_loop_s": memo_s,
        "speedup_x": speedup,
        "loss_max_abs_diff": loss_diff,
        "train_losses": new_losses,
        "gate": {
            "min_speedup_x": min_speedup,
            "loss_tolerance": loss_tolerance,
            "passed": bool(speedup >= min_speedup and loss_diff <= loss_tolerance),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    report = run_bench(repeats=args.repeats, min_speedup=args.min_speedup)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"legacy epoch loop   {report['legacy_epoch_loop_s']:.3f}s")
    print(f"memoized epoch loop {report['memoized_epoch_loop_s']:.3f}s")
    print(f"speedup             {report['speedup_x']:.2f}x "
          f"(gate >= {args.min_speedup}x)")
    print(f"loss max |diff|     {report['loss_max_abs_diff']:.3e} "
          f"(gate <= {report['gate']['loss_tolerance']:.0e})")
    print(f"wrote {args.out}")
    if not report["gate"]["passed"]:
        print("FAIL: pipeline bench gate not met", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
