#!/usr/bin/env python
"""Benchmark the ``repro.nn`` fast paths and write ``BENCH_nn.json``.

Times complete :func:`repro.core.trainer.train_encoder` runs on two
configurations, each under two kernel stacks:

- **reference** — the exact pre-fast-path stack: per-tap
  ``np.stack`` + einsum convolution (``conv1d_mode("reference")``),
  allocation-per-step optimizers (``fused_optimizers(False)``), and the
  original two-pass contrastive forward
  (``contrastive_forward_fusion(False)``);
- **fast** — the current defaults: GEMM/FFT convolutions, fused
  in-place optimizer steps, recycled gradient buffers, and the fused
  ``[originals; augmented]`` forward.

Configurations:

- ``wide_kernel`` (**the gate**): a 48-tap encoder whose residual
  blocks carry kernel spans from 47 up to ~1500 samples — the regime
  the tentpole targets, where the reference gather pays ``K`` dense
  passes per conv and the auto-selected FFT path wins outright.  Gate:
  ``speedup_x >= min_speedup`` (default 3.0) and losses within
  ``loss_tolerance`` (default 1e-9; in practice ~1e-15).
- ``default_kernel`` (reported, loss-gated only): the paper's K=3
  encoder, where the convs are memory-bound and the honest win is
  smaller.

Both stacks consume the augmentation RNG in the identical order, so
per-epoch train/val losses must agree within ``loss_tolerance``.

    python scripts/bench_nn.py [--out BENCH_nn.json]
                               [--min-speedup 3.0] [--repeats 2]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import nn  # noqa: E402
from repro.core.config import TriADConfig  # noqa: E402
from repro.core.trainer import (  # noqa: E402
    contrastive_forward_fusion,
    train_encoder,
)
from repro.pipeline import FeatureCache, FeaturePipeline  # noqa: E402

SERIES_PERIOD = 200
SERIES_LENGTH = 8000

# The gate config: 48 taps x dilations up to 32 put every encoder conv
# in the wide-kernel regime the tentpole targets, where the reference
# per-tap gather pays O(K) dense passes and the auto-selected FFT path
# does not.
WIDE_KERNEL_CONFIG = TriADConfig(
    kernel_size=48,
    epochs=1,
    seed=0,
    max_window=512,
)

# The paper's K=3 encoder: memory-bound convs, reported for honesty but
# only loss-gated (the 3x bar is not reachable when the GEMMs already
# run at memory bandwidth).
DEFAULT_KERNEL_CONFIG = TriADConfig(
    epochs=1,
    seed=0,
    max_window=512,
)


def bench_series() -> np.ndarray:
    rng = np.random.default_rng(7)
    t = np.arange(SERIES_LENGTH)
    return (
        np.sin(2 * np.pi * t / SERIES_PERIOD)
        + 0.3 * np.sin(2 * np.pi * t / (SERIES_PERIOD / 4))
        + 0.02 * rng.standard_normal(SERIES_LENGTH)
    )


@contextlib.contextmanager
def _stack(fast: bool):
    """Pin the whole kernel stack to the fast or the reference paths."""
    mode = "auto" if fast else "reference"
    with nn.conv1d_mode(mode), nn.fused_optimizers(fast), \
            contrastive_forward_fusion(fast):
        yield


def _train(series: np.ndarray, config: TriADConfig, fast: bool,
           pipeline: FeaturePipeline):
    """One timed training run against a pre-warmed feature cache."""
    with _stack(fast):
        start = time.perf_counter()
        result = train_encoder(series, config, pipeline=pipeline)
        elapsed = time.perf_counter() - start
    return elapsed, result.train_losses + result.val_losses


def _warm_pipeline(series: np.ndarray, config: TriADConfig) -> FeaturePipeline:
    """Fill the memoized feature cache so the timed region is training.

    Window features are seed- and epoch-independent: real runs pay the
    extraction once and reuse it across epochs and retrains, so the
    bench charges neither leg for it.  (Per-batch *augmented* features
    change every epoch and stay inside the timed region for both legs.)
    """
    pipeline = FeaturePipeline(cache=FeatureCache())
    plan = pipeline.plan_for(series, config)
    windows, _ = pipeline.windows(series, plan.length, plan.stride)
    pipeline.features(windows, plan.period, config.domains)
    return pipeline


def _bench_config(series: np.ndarray, config: TriADConfig, repeats: int) -> dict:
    pipeline = _warm_pipeline(series, config)
    fast_times, ref_times = [], []
    fast_losses = ref_losses = None
    for _ in range(repeats):
        elapsed, losses = _train(series, config, fast=True, pipeline=pipeline)
        fast_times.append(elapsed)
        fast_losses = losses
        elapsed, losses = _train(series, config, fast=False, pipeline=pipeline)
        ref_times.append(elapsed)
        ref_losses = losses
    fast_s, ref_s = min(fast_times), min(ref_times)
    loss_diff = float(
        np.abs(np.array(fast_losses) - np.array(ref_losses)).max()
    )
    return {
        "config": {
            "depth": config.depth,
            "hidden_dim": config.hidden_dim,
            "kernel_size": config.kernel_size,
            "batch_size": config.batch_size,
            "epochs": config.epochs,
            "max_window": config.max_window,
            "series_length": SERIES_LENGTH,
            "series_period": SERIES_PERIOD,
        },
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup_x": ref_s / fast_s,
        "loss_max_abs_diff": loss_diff,
        "train_losses": fast_losses,
    }


def run_bench(repeats: int = 2, min_speedup: float = 3.0,
              loss_tolerance: float = 1e-9) -> dict:
    series = bench_series()
    wide = _bench_config(series, WIDE_KERNEL_CONFIG, repeats)
    default = _bench_config(series, DEFAULT_KERNEL_CONFIG, repeats)
    passed = bool(
        wide["speedup_x"] >= min_speedup
        and wide["loss_max_abs_diff"] <= loss_tolerance
        and default["loss_max_abs_diff"] <= loss_tolerance
    )
    return {
        "repeats": repeats,
        "wide_kernel": wide,
        "default_kernel": default,
        "gate": {
            "min_speedup_x": min_speedup,
            "loss_tolerance": loss_tolerance,
            "passed": passed,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_nn.json")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args()

    report = run_bench(repeats=args.repeats, min_speedup=args.min_speedup)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for name in ("wide_kernel", "default_kernel"):
        entry = report[name]
        print(f"{name}: reference {entry['reference_s']:.2f}s  "
              f"fast {entry['fast_s']:.2f}s  "
              f"speedup {entry['speedup_x']:.2f}x  "
              f"loss |diff| {entry['loss_max_abs_diff']:.3e}")
    gate = report["gate"]
    print(f"gate: wide_kernel >= {gate['min_speedup_x']}x and losses "
          f"<= {gate['loss_tolerance']:.0e}")
    print(f"wrote {args.out}")
    if not gate["passed"]:
        print("FAIL: nn bench gate not met", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
