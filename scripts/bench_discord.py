#!/usr/bin/env python
"""Benchmark the discord kernel layer and write ``BENCH_discord.json``.

Times a full Table IV-style MERLIN length sweep (every length in
``16..128`` step 8 over a 1200-point series with one planted anomaly)
under two stacks:

- **reference** — ``set_discord_mode("reference")``: the original
  scalar per-module paths, no ``SeriesContext`` reuse, no lower-bound
  seeding, no pre-pruning;
- **fast** — ``set_discord_mode("auto")`` (the default): one
  prefix-sum ``SeriesContext`` threaded across the whole schedule,
  blocked/FFT distance profiles, DRAG as blocked sweeps + one batched
  NN scan, MERLIN's cross-length lower-bound seeding and pre-pruning.

The gate: ``speedup_x >= min_speedup`` (default 5.0) with **identical
discord indices and lengths** and distances within ``tolerance``
(default 1e-9) across every length in the sweep.

    python scripts/bench_discord.py [--out BENCH_discord.json]
                                    [--min-speedup 5.0] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.discord import discord_mode, merlin  # noqa: E402

SERIES_LENGTH = 2000
SERIES_PERIOD = 100
MIN_LENGTH = 16
MAX_LENGTH = 128
STEP = 8


def bench_series() -> np.ndarray:
    """A periodic series with one planted anomaly — the regime MERLIN
    runs in at TriAD inference time (the padded suspect region)."""
    rng = np.random.default_rng(11)
    t = np.arange(SERIES_LENGTH)
    series = (
        np.sin(2 * np.pi * t / SERIES_PERIOD)
        + 0.3 * np.sin(2 * np.pi * t / (SERIES_PERIOD / 4))
        + 0.1 * rng.standard_normal(SERIES_LENGTH)
    )
    series[700:740] += 2.5 * np.hanning(40)
    return series


def _sweep(series: np.ndarray, mode: str):
    with discord_mode(mode):
        start = time.perf_counter()
        result = merlin(series, MIN_LENGTH, MAX_LENGTH, step=STEP)
        elapsed = time.perf_counter() - start
    return elapsed, result


def run_bench(repeats: int = 3, min_speedup: float = 5.0,
              tolerance: float = 1e-9) -> dict:
    series = bench_series()
    fast_times, ref_times = [], []
    fast_result = ref_result = None
    for _ in range(repeats):
        elapsed, fast_result = _sweep(series, "auto")
        fast_times.append(elapsed)
        elapsed, ref_result = _sweep(series, "reference")
        ref_times.append(elapsed)
    fast_s, ref_s = min(fast_times), min(ref_times)

    fast_d, ref_d = fast_result.discords, ref_result.discords
    indices_match = [(d.index, d.length) for d in fast_d] == [
        (d.index, d.length) for d in ref_d
    ]
    distance_diff = (
        float(max(
            abs(a.distance - b.distance) for a, b in zip(fast_d, ref_d)
        ))
        if fast_d and len(fast_d) == len(ref_d)
        else float("inf")
    )
    passed = bool(
        ref_s / fast_s >= min_speedup
        and indices_match
        and distance_diff <= tolerance
    )
    return {
        "config": {
            "series_length": SERIES_LENGTH,
            "series_period": SERIES_PERIOD,
            "min_length": MIN_LENGTH,
            "max_length": MAX_LENGTH,
            "step": STEP,
            "lengths": len(ref_d),
        },
        "repeats": repeats,
        "reference_s": ref_s,
        "fast_s": fast_s,
        "speedup_x": ref_s / fast_s,
        "indices_match": indices_match,
        "distance_max_abs_diff": distance_diff,
        "discords": [
            {"index": d.index, "length": d.length, "distance": d.distance}
            for d in fast_d
        ],
        "gate": {
            "min_speedup_x": min_speedup,
            "tolerance": tolerance,
            "passed": passed,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_discord.json"
    )
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    report = run_bench(repeats=args.repeats, min_speedup=args.min_speedup)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"merlin sweep {MIN_LENGTH}..{MAX_LENGTH} step {STEP} on "
          f"{SERIES_LENGTH} points: "
          f"reference {report['reference_s']:.3f}s  "
          f"fast {report['fast_s']:.3f}s  "
          f"speedup {report['speedup_x']:.2f}x")
    print(f"indices match: {report['indices_match']}  "
          f"distance |diff| {report['distance_max_abs_diff']:.3e}")
    gate = report["gate"]
    print(f"gate: >= {gate['min_speedup_x']}x, identical indices, "
          f"distances <= {gate['tolerance']:.0e}")
    print(f"wrote {args.out}")
    if not gate["passed"]:
        print("FAIL: discord bench gate not met", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
