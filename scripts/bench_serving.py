#!/usr/bin/env python
"""Run the serving benchmark suite and write BENCH_serve.json.

Invokes ``benchmarks/bench_serve.py`` under pytest-benchmark, condenses
the report into a small, diffable baseline at the repo root, and
enforces the serving acceptance gate::

    python scripts/bench_serving.py [--out BENCH_serve.json]
                                    [--min-speedup 3.0]

The condensed file keeps mean/min/stddev/rounds per benchmark plus two
derived ratios:

- ``microbatch_speedup_x`` — sequential engine mean / micro-batched
  engine mean on 16 concurrent streams; the gate requires >= 3.0;
- ``left_profile_speedup_x`` — python-loop left-matrix-profile mean /
  vectorised mean.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_suite(raw_json: Path) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_serve.py"),
        "-m", "bench",
        "--benchmark-only",
        "--benchmark-warmup=off",
        f"--benchmark-json={raw_json}",
        "-q",
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def condense(raw_json: Path) -> dict:
    report = json.loads(raw_json.read_text())
    benchmarks: dict[str, dict] = {}
    for entry in report.get("benchmarks", []):
        stats = entry.get("stats", {})
        benchmarks[entry["name"]] = {
            "mean_s": stats.get("mean"),
            "min_s": stats.get("min"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
    payload: dict = {
        "suite": "benchmarks/bench_serve.py",
        "machine": report.get("machine_info", {}).get("machine"),
        "python": report.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }
    sequential = benchmarks.get("test_engine_sequential_scoring", {}).get("mean_s")
    batched = benchmarks.get("test_engine_microbatched_scoring", {}).get("mean_s")
    if sequential and batched:
        payload["microbatch_speedup_x"] = round(sequential / batched, 2)
    loop = benchmarks.get("test_left_profile_loop_reference", {}).get("mean_s")
    vectorised = benchmarks.get("test_left_profile_vectorised", {}).get("mean_s")
    if loop and vectorised:
        payload["left_profile_speedup_x"] = round(loop / vectorised, 2)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_serve.json")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="gate: required micro-batch throughput multiple "
                             "over sequential scoring (default 3.0)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "benchmark-raw.json"
        code = run_suite(raw_json)
        if code != 0:
            print(f"benchmark suite failed (exit {code})", file=sys.stderr)
            return code
        payload = condense(raw_json)

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    speedup = payload.get("microbatch_speedup_x")
    if speedup is None:
        print("gate: engine benchmarks missing from report", file=sys.stderr)
        return 1
    print(f"micro-batch speedup: {speedup}x "
          f"(gate: >= {args.min_speedup}x)")
    if payload.get("left_profile_speedup_x") is not None:
        print(f"left-profile speedup: {payload['left_profile_speedup_x']}x")
    if speedup < args.min_speedup:
        print("gate FAILED: micro-batching below required speedup",
              file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
