#!/usr/bin/env python
"""Benchmark the sharded serving fabric and write BENCH_shard.json.

Drives a 10k-stream fleet through :class:`repro.serve.ShardRouter` and
measures, on the same feed:

- ``single_engine_s`` — one in-process :class:`ScoringEngine` via the
  vectorised ``ingest_many`` path (the single-process baseline);
- ``fabric_1worker_s`` / ``fabric_4workers_s`` — the full fabric:
  consistent-hash routing, worker processes, persist-then-ack through
  an :class:`InMemoryStore`;
- per-round latencies for the 4-worker run (p50/p99), expressed per
  point against the late-not-wrong budget;
- the ``kill -9`` chaos drill at recording scale: one worker SIGKILLed
  mid-run must heal to **bit-identical** scores/alerts with zero lost
  acknowledged streams.

Gates (exit 1 on failure)::

    python scripts/bench_shard.py [--out BENCH_shard.json]
                                  [--streams 10000] [--chunk 128]
                                  [--min-efficiency 0.625]
                                  [--p99-budget-us 25.0]

The headline claim — >= 2.5x ingest throughput at 4 workers over a
single process — is a *parallelism* claim: ideal speedup with W workers
on C usable cores is ``min(W, C)``, so the gate requires

    speedup >= min_efficiency * min(workers, usable_cores)

i.e. the full 2.5x (0.625 * 4) on a 4-core box.  The box this repo's
benches run on has a **single CPU** (``usable_cores`` in the report),
where ideal speedup is 1.0 and the same efficiency bound degenerates to
an overhead gate: the fabric — pipes, snapshot export, store writes and
all — must stay within 0.625x of the bare in-process engine.  Both the
raw timings and the derived bound are recorded so a multi-core rerun
enforces the real 2.5x with no script change.

The chaos and p99 gates are machine-independent and always enforced.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.shard import (  # noqa: E402
    ShardRouter,
    WorkerSpec,
    build_worker_engine,
)
from repro.serve.stores import InMemoryStore  # noqa: E402

WINDOW = 32
STRIDE = 8


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def make_spec(record_scores: bool = False) -> WorkerSpec:
    t = np.arange(800)
    train = np.sin(2 * np.pi * t / WINDOW)
    train += 0.03 * np.random.default_rng(5).standard_normal(len(t))
    return WorkerSpec(
        detector="spectral-residual",
        params={"max_window": 64, "seed": 0},
        train=train,
        window_length=WINDOW,
        stride=STRIDE,
        engine={"max_batch": 64, "score_baseline": 64, "warmup_scores": 8},
        record_scores=record_scores,
    )


def make_feed(streams: int, points: int) -> np.ndarray:
    rng = np.random.default_rng(1)
    base = np.sin(2 * np.pi * np.arange(points) / WINDOW)
    return base + 0.03 * rng.standard_normal((streams, points))


def run_single_engine(spec, series, chunk: int) -> float:
    engine = build_worker_engine(spec)
    ids = [f"s{i}" for i in range(len(series))]
    start = time.perf_counter()
    for position in range(0, series.shape[1], chunk):
        for i, stream_id in enumerate(ids):
            engine.ingest_many(stream_id, series[i, position : position + chunk])
        engine.drain()
    return time.perf_counter() - start


def run_fabric(spec, series, chunk: int, workers: int):
    """Returns (total_s, per-round seconds) for one fabric run."""
    ids = [f"s{i}" for i in range(len(series))]
    rounds: list[float] = []
    with ShardRouter(spec, workers=workers, store=InMemoryStore()) as router:
        start = time.perf_counter()
        for position in range(0, series.shape[1], chunk):
            round_start = time.perf_counter()
            router.submit(
                (stream_id, series[i, position : position + chunk])
                for i, stream_id in enumerate(ids)
            )
            rounds.append(time.perf_counter() - round_start)
        total = time.perf_counter() - start
    return total, rounds


def run_chaos_drill(streams: int = 200, chunk: int = 64, rounds: int = 6) -> dict:
    """kill -9 one worker mid-run; require bit-identical recovery."""
    spec = make_spec(record_scores=True)
    series = make_feed(streams, chunk * rounds)
    series[:, (chunk * rounds) // 2 : (chunk * rounds) // 2 + 6] += 6.0
    ids = [f"s{i}" for i in range(streams)]

    def run(kill_at: int | None):
        records, alerts = [], []
        store = InMemoryStore()
        with ShardRouter(spec, workers=3, store=store) as router:
            for index, position in enumerate(range(0, series.shape[1], chunk)):
                if index == kill_at:
                    victim = router.workers[0]
                    os.kill(router.worker_pid(victim), signal.SIGKILL)
                    router._workers[victim].process.join(timeout=5.0)
                alerts.extend(
                    router.submit(
                        (sid, series[i, position : position + chunk])
                        for i, sid in enumerate(ids)
                    )
                )
                records.extend(router.last_records)
            acked = store.stream_ids()
            respawns = router.respawns
        return (
            sorted(records),
            sorted((a.stream_id, a.index, a.score) for a in alerts),
            acked,
            respawns,
        )

    clean_records, clean_alerts, _, _ = run(kill_at=None)
    records, alerts, acked, respawns = run(kill_at=rounds // 2)
    return {
        "streams": streams,
        "respawns": respawns,
        "scored_windows": len(records),
        "alerts": len(alerts),
        "bit_identical": bool(
            records == clean_records and alerts == clean_alerts
        ),
        "lost_acked_streams": streams - len(acked),
    }


def run_bench(
    streams: int,
    chunk: int,
    rounds: int,
    workers: int,
    min_efficiency: float,
    p99_budget_us: float,
) -> dict:
    spec = make_spec()
    series = make_feed(streams, chunk * rounds)
    points = series.size

    print(f"feed: {streams} streams x {chunk * rounds} points "
          f"({points:,} total), chunk {chunk}")
    single_s = run_single_engine(spec, series, chunk)
    print(f"single engine   : {single_s:.2f}s "
          f"({points / single_s:,.0f} pts/s)")
    fabric1_s, _ = run_fabric(spec, series, chunk, workers=1)
    print(f"fabric x1       : {fabric1_s:.2f}s "
          f"({points / fabric1_s:,.0f} pts/s)")
    fabric_s, round_latencies = run_fabric(spec, series, chunk, workers=workers)
    print(f"fabric x{workers}       : {fabric_s:.2f}s "
          f"({points / fabric_s:,.0f} pts/s)")

    points_per_round = streams * chunk
    p50_s = float(np.percentile(round_latencies, 50))
    p99_s = float(np.percentile(round_latencies, 99))
    p99_us_per_point = p99_s / points_per_round * 1e6

    print("chaos drill (recording scale)...")
    chaos = run_chaos_drill()

    cores = usable_cores()
    speedup = single_s / fabric_s
    required = min_efficiency * min(workers, cores)
    gates = {
        "min_efficiency": min_efficiency,
        "required_speedup_x": round(required, 3),
        "speedup_ok": bool(speedup >= required),
        "p99_budget_us_per_point": p99_budget_us,
        "p99_ok": bool(p99_us_per_point <= p99_budget_us),
        "chaos_ok": bool(
            chaos["bit_identical"] and chaos["lost_acked_streams"] == 0
        ),
    }
    gates["passed"] = bool(
        gates["speedup_ok"] and gates["p99_ok"] and gates["chaos_ok"]
    )
    return {
        "config": {
            "streams": streams,
            "chunk": chunk,
            "rounds": rounds,
            "workers": workers,
            "window": WINDOW,
            "stride": STRIDE,
            "usable_cores": cores,
        },
        "points": points,
        "single_engine_s": single_s,
        "fabric_1worker_s": fabric1_s,
        f"fabric_{workers}workers_s": fabric_s,
        "ingest_points_per_s": points / fabric_s,
        "speedup_x": speedup,
        "round_p50_s": p50_s,
        "round_p99_s": p99_s,
        "p99_us_per_point": p99_us_per_point,
        "chaos_drill": chaos,
        "gate": gates,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_shard.json")
    parser.add_argument("--streams", type=int, default=10_000)
    parser.add_argument("--chunk", type=int, default=128)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--min-efficiency", type=float, default=0.625,
                        help="required speedup per ideal-parallel unit; "
                             "0.625 * min(4 workers, 4 cores) = the 2.5x gate")
    parser.add_argument("--p99-budget-us", type=float, default=25.0,
                        help="late-not-wrong budget: p99 round latency per "
                             "ingested point, microseconds")
    args = parser.parse_args(argv)

    report = run_bench(
        streams=args.streams,
        chunk=args.chunk,
        rounds=args.rounds,
        workers=args.workers,
        min_efficiency=args.min_efficiency,
        p99_budget_us=args.p99_budget_us,
    )
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    gate = report["gate"]
    print(f"speedup         : {report['speedup_x']:.2f}x "
          f"(gate {gate['required_speedup_x']}x on "
          f"{report['config']['usable_cores']} core(s))")
    print(f"p99 latency     : {report['p99_us_per_point']:.1f} us/pt "
          f"(budget {gate['p99_budget_us_per_point']} us/pt)")
    chaos = report["chaos_drill"]
    print(f"chaos drill     : respawns={chaos['respawns']} "
          f"bit_identical={chaos['bit_identical']} "
          f"lost_acked={chaos['lost_acked_streams']}")
    print("gate " + ("passed" if gate["passed"] else "FAILED"))
    return 0 if gate["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
